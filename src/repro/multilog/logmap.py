"""Epoch-versioned shard -> agreement-log assignment.

The multi-log deployment routes each execution shard's ordered feed through
exactly one of ``K`` independent agreement logs.  :class:`LogMap` is the
immutable assignment at one *log epoch* -- the ordering-plane analogue of
:class:`~repro.sharding.partitioner.PartitionMap` -- and
:class:`LogMapRegistry` is the shared append-only history every role of the
deployment derives identically from the agreed ``LogMapChange`` history.

A log-map change moves one shard between log groups; its position in the
*cross-log cut* (every log orders the change marker, and each queue applies
it exactly when its release frontier crosses the marker) is what makes the
epoch advance a consistent cut over all ``K`` orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class LogMap:
    """One log epoch's immutable shard -> agreement-log assignment.

    ``assignment[s]`` is the index of the log whose agreement cluster
    orders shard ``s``'s feed.  The number of logs is fixed for the
    lifetime of the deployment -- a change moves shard ownership between
    logs, it never adds or removes clusters (mirroring the partition map's
    fixed-cluster discipline).
    """

    log_epoch: int
    assignment: Tuple[int, ...]
    num_logs: int

    def __post_init__(self) -> None:
        if any(not 0 <= log < self.num_logs for log in self.assignment):
            raise ConfigurationError(
                f"shard owners must be logs in [0, {self.num_logs})")

    @property
    def num_shards(self) -> int:
        return len(self.assignment)

    def log_of(self, shard: int) -> int:
        """The log whose agreement cluster orders ``shard``'s feed."""
        return self.assignment[shard]

    def shards_of_log(self, log: int) -> List[int]:
        """Ascending list of shards in ``log``'s group."""
        return [shard for shard, owner in enumerate(self.assignment)
                if owner == log]

    def move(self, shard: int, target_log: int) -> "LogMap":
        """Reassign ``shard`` to ``target_log`` (a new map at epoch + 1)."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(f"no shard {shard} to move")
        if not 0 <= target_log < self.num_logs:
            raise ConfigurationError(f"no log {target_log} to move to")
        if self.assignment[shard] == target_log:
            raise ConfigurationError(
                f"shard {shard} is already ordered by log {target_log}")
        assignment = list(self.assignment)
        assignment[shard] = target_log
        return LogMap(log_epoch=self.log_epoch + 1,
                      assignment=tuple(assignment), num_logs=self.num_logs)

    def snapshot(self) -> dict:
        """Observability snapshot (registered as a global probe)."""
        return {
            "log_epoch": self.log_epoch,
            "num_logs": self.num_logs,
            "assignment": list(self.assignment),
        }


def initial_log_map(num_shards: int, num_logs: int) -> LogMap:
    """The epoch-0 assignment: contiguous groups of equal size.

    Shard ``s`` belongs to log ``s // (num_shards // num_logs)`` --
    ``SystemConfig`` validation guarantees the division is exact.
    """
    if num_logs < 1 or num_shards < num_logs or num_shards % num_logs:
        raise ConfigurationError(
            f"{num_shards} shards cannot form {num_logs} equal log groups")
    group = num_shards // num_logs
    return LogMap(log_epoch=0,
                  assignment=tuple(s // group for s in range(num_shards)),
                  num_logs=num_logs)


class LogMapRegistry:
    """Append-only history of agreed log maps, indexed by log epoch.

    Shared by every role of one simulated deployment (like the partition
    map registry): the contents are a pure function of the agreed
    ``LogMapChange`` history, so appends are idempotent by epoch -- a map
    already derived by another role is confirmed, never replaced.  Per-node
    log-epoch *cursors* live with the queue / execution / client roles;
    the registry only answers "what was the map at epoch e".
    """

    def __init__(self, initial: LogMap) -> None:
        if initial.log_epoch != 0:
            raise ConfigurationError("the initial log map must be epoch 0")
        self._maps: List[LogMap] = [initial]

    @property
    def latest_epoch(self) -> int:
        return len(self._maps) - 1

    @property
    def latest(self) -> LogMap:
        return self._maps[-1]

    def map_for(self, log_epoch: int) -> LogMap:
        if not 0 <= log_epoch < len(self._maps):
            raise KeyError(f"no log map for epoch {log_epoch}")
        return self._maps[log_epoch]

    def has_epoch(self, log_epoch: int) -> bool:
        return 0 <= log_epoch < len(self._maps)

    def append(self, new_map: LogMap) -> None:
        """Record the map for ``latest_epoch + 1`` (idempotent by epoch)."""
        if new_map.log_epoch <= self.latest_epoch:
            return  # already derived by another role of this deployment
        if new_map.log_epoch != self.latest_epoch + 1:
            raise ConfigurationError(
                f"log maps must be appended in epoch order (have "
                f"{self.latest_epoch}, got {new_map.log_epoch})")
        self._maps.append(new_map)

    def snapshot(self) -> dict:
        return self.latest.snapshot()
