"""Network fault models.

The paper assumes an unreliable network that can discard, delay, replicate,
reorder, and alter messages.  :class:`NetworkFaultModel` implements exactly
those behaviours, driven by :class:`repro.config.NetworkConfig` probabilities
and a deterministic random stream.  :class:`PerfectNetworkFaults` is the
degenerate model used by unit tests that want fully reliable delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..config import NetworkConfig
from ..sim.rand import DeterministicRandom
from ..util.ids import NodeId
from .message import CorruptedMessage, Message


@dataclass
class DeliveryPlan:
    """What the network decided to do with one transmission.

    ``deliveries`` is a list of (delay_ms, message) pairs: an empty list means
    the message was dropped, more than one entry means it was duplicated, and
    a replaced message payload means corruption.
    """

    deliveries: List[Tuple[float, Message]]
    dropped: bool


@dataclass(frozen=True)
class LinkFault:
    """Targeted fault knobs for one *directed* ``(src, dst)`` link.

    Unlike :meth:`NetworkFaultModel.partition` (which cuts both directions),
    a link fault is asymmetric: ``set_link_fault(a, b, ...)`` degrades only
    ``a -> b`` traffic, so schedules can express one-way partitions and
    lossy or slow links without raising the global probabilities for every
    node pair.
    """

    drop_probability: float = 0.0
    extra_delay_ms: float = 0.0
    duplicate_probability: float = 0.0
    corrupt_probability: float = 0.0
    #: probability a copy crossing this link is reordered behind later
    #: traffic (modelled, like the global knob, as a large extra delay)
    reorder_probability: float = 0.0

    def validate(self) -> None:
        for name in ("drop_probability", "duplicate_probability",
                     "corrupt_probability", "reorder_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"LinkFault.{name} must be in [0, 1]")
        if self.extra_delay_ms < 0.0:
            raise ValueError("LinkFault.extra_delay_ms must be >= 0")


class NetworkFaultModel:
    """Stochastic unreliable-network behaviour."""

    def __init__(self, config: NetworkConfig, rng: DeterministicRandom) -> None:
        config.validate()
        self.config = config
        self.rng = rng
        self._partitioned: Set[frozenset] = set()
        self._link_faults: Dict[Tuple[NodeId, NodeId], LinkFault] = {}
        self.stats_dropped = 0
        self.stats_duplicated = 0
        self.stats_corrupted = 0
        self.stats_delivered = 0

    # ------------------------------------------------------------------ #
    # Partitions (used by fault-injection experiments).
    # ------------------------------------------------------------------ #

    def partition(self, a: NodeId, b: NodeId) -> None:
        """Cut the link between ``a`` and ``b`` until healed."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: NodeId, b: NodeId) -> None:
        """Heal a previously cut link."""
        self._partitioned.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        """Heal every partition."""
        self._partitioned.clear()

    def is_partitioned(self, a: NodeId, b: NodeId) -> bool:
        return frozenset((a, b)) in self._partitioned

    # ------------------------------------------------------------------ #
    # Targeted per-link overrides (asymmetric faults).
    # ------------------------------------------------------------------ #

    def set_link_fault(self, src: NodeId, dst: NodeId, fault: LinkFault) -> None:
        """Degrade the directed ``src -> dst`` link until cleared."""
        fault.validate()
        self._link_faults[(src, dst)] = fault

    def clear_link_fault(self, src: NodeId, dst: NodeId) -> None:
        """Restore the directed ``src -> dst`` link."""
        self._link_faults.pop((src, dst), None)

    def clear_link_faults(self) -> None:
        """Restore every directed link."""
        self._link_faults.clear()

    def link_fault(self, src: NodeId, dst: NodeId) -> Optional[LinkFault]:
        return self._link_faults.get((src, dst))

    # ------------------------------------------------------------------ #
    # Per-message decisions.
    # ------------------------------------------------------------------ #

    def base_delay(self, size_bytes: int) -> float:
        """Propagation plus transmission delay for a message of ``size_bytes``."""
        propagation = self.rng.uniform(self.config.min_delay_ms, self.config.max_delay_ms)
        transmission = size_bytes / self.config.bandwidth_bytes_per_ms
        return propagation + transmission

    def plan(self, source: NodeId, destination: NodeId, message: Message) -> DeliveryPlan:
        """Decide drop/duplicate/delay/corrupt for one transmission."""
        if self.is_partitioned(source, destination):
            self.stats_dropped += 1
            return DeliveryPlan(deliveries=[], dropped=True)

        link = self._link_faults.get((source, destination))
        if self.rng.chance(self.config.drop_probability) or (
                link is not None and self.rng.chance(link.drop_probability)):
            self.stats_dropped += 1
            return DeliveryPlan(deliveries=[], dropped=True)

        size = message.wire_size()
        copies = 1
        if self.rng.chance(self.config.duplicate_probability):
            copies += 1
            self.stats_duplicated += 1
        if link is not None and self.rng.chance(link.duplicate_probability):
            copies += 1
            self.stats_duplicated += 1

        deliveries: List[Tuple[float, Message]] = []
        for _ in range(copies):
            delay = self.base_delay(size)
            if link is not None:
                delay += link.extra_delay_ms
            if self.rng.chance(self.config.reorder_probability) or (
                    link is not None
                    and self.rng.chance(link.reorder_probability)):
                # Reordering is modelled as extra delay on this copy.
                delay += self.rng.uniform(0.0, 4.0 * self.config.max_delay_ms)
            payload: Message = message
            if self.rng.chance(self.config.corrupt_probability) or (
                    link is not None
                    and self.rng.chance(link.corrupt_probability)):
                payload = CorruptedMessage(message.type_name(), size)
                self.stats_corrupted += 1
            deliveries.append((delay, payload))
            self.stats_delivered += 1
        return DeliveryPlan(deliveries=deliveries, dropped=False)


class PerfectNetworkFaults(NetworkFaultModel):
    """Reliable, low-jitter network used by unit tests."""

    def __init__(self, rng: Optional[DeterministicRandom] = None,
                 delay_ms: float = 0.1) -> None:
        config = NetworkConfig(min_delay_ms=delay_ms, max_delay_ms=delay_ms)
        super().__init__(config, rng or DeterministicRandom(0, "perfect-net"))

    def plan(self, source: NodeId, destination: NodeId, message: Message) -> DeliveryPlan:
        if self.is_partitioned(source, destination):
            self.stats_dropped += 1
            return DeliveryPlan(deliveries=[], dropped=True)
        link = self._link_faults.get((source, destination))
        if link is not None:
            # A targeted link fault turns this "perfect" link unreliable;
            # route through the full stochastic path for it.
            return super().plan(source, destination, message)
        delay = self.base_delay(message.wire_size())
        self.stats_delivered += 1
        return DeliveryPlan(deliveries=[(delay, message)], dropped=False)
