"""Communication topology.

By default every node can talk to every other node.  The privacy-firewall
deployment restricts communication so that confidential state can only leave
the execution cluster through a column of filters:

* clients  <->  agreement nodes,
* agreement nodes  <->  bottom filter row (row 0),
* filter row ``i``  <->  filter row ``i + 1``,
* top filter row  <->  execution nodes.

Attempting to send over a non-existent link raises :class:`TopologyError`,
which is how the simulation enforces the paper's physical-wiring requirement.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..errors import TopologyError
from ..util.ids import NodeId, Role


class Topology:
    """Set of allowed (unordered) communication links."""

    def __init__(self, fully_connected: bool = True) -> None:
        self._fully_connected = fully_connected
        self._links: Set[FrozenSet[NodeId]] = set()
        self._nodes: Set[NodeId] = set()

    @property
    def fully_connected(self) -> bool:
        return self._fully_connected

    @property
    def nodes(self) -> FrozenSet[NodeId]:
        return frozenset(self._nodes)

    def add_node(self, node: NodeId) -> None:
        """Register a node (mostly useful for restricted topologies)."""
        self._nodes.add(node)

    def add_link(self, a: NodeId, b: NodeId) -> None:
        """Allow bidirectional communication between ``a`` and ``b``."""
        if a == b:
            return
        self._nodes.add(a)
        self._nodes.add(b)
        self._links.add(frozenset((a, b)))

    def add_links(self, group_a: Iterable[NodeId], group_b: Iterable[NodeId]) -> None:
        """Allow every node in ``group_a`` to talk to every node in ``group_b``."""
        group_b_list = list(group_b)
        for a in group_a:
            for b in group_b_list:
                self.add_link(a, b)

    def allows(self, a: NodeId, b: NodeId) -> bool:
        """Return True iff ``a`` and ``b`` share a physical link."""
        if a == b:
            return True
        if self._fully_connected:
            return True
        return frozenset((a, b)) in self._links

    def check(self, a: NodeId, b: NodeId) -> None:
        """Raise :class:`TopologyError` if ``a`` may not talk to ``b``."""
        if not self.allows(a, b):
            raise TopologyError(f"no physical link between {a} and {b}")

    def neighbours(self, node: NodeId) -> List[NodeId]:
        """All nodes sharing a link with ``node`` (restricted topologies only)."""
        if self._fully_connected:
            return [other for other in sorted(self._nodes) if other != node]
        found = []
        for link in self._links:
            if node in link:
                (other,) = [n for n in link if n != node] or [node]
                found.append(other)
        return sorted(set(found))

    # ------------------------------------------------------------------ #
    # Builders.
    # ------------------------------------------------------------------ #

    @staticmethod
    def full() -> "Topology":
        """Fully connected topology (no restriction)."""
        return Topology(fully_connected=True)

    @staticmethod
    def privacy_firewall(clients: Iterable[NodeId],
                         agreement: Iterable[NodeId],
                         firewall_rows: List[List[NodeId]],
                         execution: Iterable[NodeId]) -> "Topology":
        """Restricted topology for the privacy-firewall deployment.

        ``firewall_rows[0]`` is the bottom row (adjacent to agreement nodes);
        ``firewall_rows[-1]`` is the top row (adjacent to execution nodes).
        When the bottom row is co-located with agreement nodes the caller
        simply passes the same node ids in both collections; self-links are
        always allowed.
        """
        topo = Topology(fully_connected=False)
        clients = list(clients)
        agreement = list(agreement)
        execution = list(execution)
        for node in clients + agreement + execution:
            topo.add_node(node)
        for row in firewall_rows:
            for node in row:
                topo.add_node(node)

        # Clients talk to agreement nodes only.
        topo.add_links(clients, agreement)
        # Agreement nodes talk among themselves (three-phase protocol).
        topo.add_links(agreement, agreement)

        if not firewall_rows:
            # Degenerate case: no firewall; agreement talks to execution.
            topo.add_links(agreement, execution)
        else:
            topo.add_links(agreement, firewall_rows[0])
            for lower, upper in zip(firewall_rows, firewall_rows[1:]):
                topo.add_links(lower, upper)
            topo.add_links(firewall_rows[-1], execution)

        # Execution nodes talk among themselves (state transfer, checkpoints).
        topo.add_links(execution, execution)
        return topo

    @staticmethod
    def separate_clusters(clients: Iterable[NodeId],
                          agreement: Iterable[NodeId],
                          execution: Iterable[NodeId],
                          allow_client_execution: bool = True) -> "Topology":
        """Topology for the separated architecture without a firewall.

        The optimisation in which execution nodes reply directly to clients
        requires client<->execution links; pass ``allow_client_execution=False``
        to force replies through the agreement cluster.
        """
        topo = Topology(fully_connected=False)
        clients = list(clients)
        agreement = list(agreement)
        execution = list(execution)
        topo.add_links(clients, agreement)
        topo.add_links(agreement, agreement)
        topo.add_links(agreement, execution)
        topo.add_links(execution, execution)
        if allow_client_execution:
            topo.add_links(clients, execution)
        return topo

    def role_partition(self) -> Dict[Role, List[NodeId]]:
        """Group registered nodes by role (restricted topologies only)."""
        groups: Dict[Role, List[NodeId]] = {}
        for node in sorted(self._nodes):
            groups.setdefault(node.role, []).append(node)
        return groups
