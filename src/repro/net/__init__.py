"""Simulated asynchronous unreliable network.

The network model matches the paper's assumptions: messages may be dropped,
delayed, duplicated, reordered, and corrupted; there is no bound on delivery
delay, but the *bounded fair links* assumption (retransmitted messages are
eventually delivered) holds because drop decisions are independent per copy.

A :class:`Topology` restricts which node pairs have a physical link.  The
privacy firewall's confidentiality argument depends on this restriction:
execution nodes can talk only to the top filter row, each filter row only to
the rows directly above and below, and clients only to agreement nodes.
"""

from .message import Message, CorruptedMessage
from .topology import Topology
from .faults import NetworkFaultModel, PerfectNetworkFaults
from .network import Network

__all__ = [
    "Message",
    "CorruptedMessage",
    "Topology",
    "NetworkFaultModel",
    "PerfectNetworkFaults",
    "Network",
]
