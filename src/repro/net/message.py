"""Base class for all protocol messages.

Concrete message types live in :mod:`repro.messages`; this module defines the
minimal contract the network and the cryptographic substrate rely on:

* :meth:`Message.to_wire` returns a canonical-encodable representation used
  for digests, MACs, signatures, and size estimation;
* :meth:`Message.type_name` identifies the message type for dispatch and
  debugging.
"""

from __future__ import annotations

from typing import Any, Dict

from ..util.encoding import canonical_encode, estimate_size
from ..util.wirecache import WIRE_CACHE


class Message:
    """Base class for protocol messages.

    Subclasses are ordinarily frozen dataclasses that implement
    :meth:`payload_fields` (the fields covered by authentication) -- the
    default :meth:`to_wire` composes the type name with those fields so that
    two different message types never authenticate to the same bytes.
    """

    #: subclasses declaring ``slots=True`` stay dict-free because the base
    #: carries no instance state (wire facts are memoised externally by id)
    __slots__ = ()

    #: extra bytes of payload not represented in the wire dict (e.g. modeled
    #: request/reply bodies whose size matters but whose content does not).
    padding_bytes: int = 0

    def payload_fields(self) -> Dict[str, Any]:
        """Return the authenticated fields of this message as a dict."""
        raise NotImplementedError

    def to_wire(self) -> Dict[str, Any]:
        """Canonical-encodable representation of this message."""
        wire = {"__type__": self.type_name()}
        wire.update(self.payload_fields())
        return wire

    def type_name(self) -> str:
        """Short message type name used for dispatch and logging."""
        return type(self).__name__

    def encoded(self) -> bytes:
        """Canonical byte encoding (used for digests and authentication)."""
        return canonical_encode(self.to_wire())

    def wire_size(self) -> int:
        """Estimated size in bytes as transmitted on the network.

        Messages are immutable once sent (certificates are only mutated
        inside collectors before their first send), so the canonical
        encoding length is memoised per object in the process-wide
        :data:`~repro.util.wirecache.WIRE_CACHE`.
        """
        entry = WIRE_CACHE.entry_for(self)
        if entry is None:
            return estimate_size(self.to_wire()) + self.padding_bytes
        if entry.size is None:
            entry.materialise()
        return entry.size + self.padding_bytes


class CorruptedMessage(Message):
    """Replacement payload delivered when the network corrupts a message.

    Correct receivers must treat it as garbage: it fails every verification
    and carries no usable protocol fields.
    """

    def __init__(self, original_type: str, size: int) -> None:
        self.original_type = original_type
        self.size = size

    def payload_fields(self) -> Dict[str, Any]:
        return {"original_type": self.original_type, "garbage": True}

    def wire_size(self) -> int:
        return self.size
