"""The simulated network.

The :class:`Network` connects :class:`~repro.sim.process.Process` instances
through a :class:`~repro.net.topology.Topology` and a
:class:`~repro.net.faults.NetworkFaultModel`.  A ``send`` consults the
topology (raising :class:`TopologyError` on forbidden links), asks the fault
model what to do with the transmission, and schedules zero or more delivery
events on the destination process.

Runtime-backend contract
------------------------
This class is the network half of the
:class:`~repro.runtime.interface.Runtime` seam; the socket transport in
:mod:`repro.runtime.asyncio_rt` substitutes for it.  Invariants a
replacement must preserve, because protocol code assumes them:

* **Per-link FIFO.**  Two messages sent ``a -> b`` are delivered in send
  order (here: equal fault-model delays break ties by send order; over
  real sockets: one ordered TCP stream per directed pair).  No ordering
  is promised across *different* links.
* **At-most-once delivery.**  A ``send`` yields zero or one delivery --
  never duplicates.  Retransmission is the protocol's job.
* **Taps before transport.**  Registered taps see every send in
  registration order and may rewrite or swallow it (:data:`DROP`); a
  dropped message consumes no transport resources and is invisible to
  the destination.
* **Crash drops.**  Delivery to a crashed process is silently discarded
  at delivery time (not send time -- a node that crashes mid-flight
  still loses the message).
* **Fault-model scope.**  Configured delays, drops, partitions, and
  reordering are a *simulator* feature: a real transport inherits the
  loss/latency behaviour of its substrate instead, and tests that shape
  faults must run on the simulator backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..sim.scheduler import Scheduler
from ..sim.process import Process
from ..util.ids import NodeId
from .faults import NetworkFaultModel, PerfectNetworkFaults
from .message import Message
from .topology import Topology


@dataclass
class NetworkStats:
    """Aggregate counters for a simulation run."""

    sends: int = 0
    deliveries: int = 0
    bytes_sent: int = 0
    drops_by_topology: int = 0
    drops_by_tap: int = 0
    per_type: Dict[str, int] = field(default_factory=dict)

    def record_type(self, type_name: str) -> None:
        self.per_type[type_name] = self.per_type.get(type_name, 0) + 1


class _DropSentinel:
    """Returned by a tap to swallow a transmission entirely."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DROP>"


#: a tap returning this sentinel drops the message before the fault model
#: sees it (used by omission-style Byzantine behaviours)
DROP = _DropSentinel()

MessageTap = Callable[[NodeId, NodeId, Message], Optional[Message]]


class Network:
    """Message transport between registered processes."""

    def __init__(self, scheduler: Scheduler,
                 topology: Optional[Topology] = None,
                 faults: Optional[NetworkFaultModel] = None,
                 enforce_topology: bool = True) -> None:
        self.scheduler = scheduler
        self.topology = topology or Topology.full()
        self.faults = faults or PerfectNetworkFaults(scheduler.random.fork("network"))
        self.enforce_topology = enforce_topology
        self.stats = NetworkStats()
        self._processes: Dict[NodeId, Process] = {}
        self._taps: List[MessageTap] = []

    # ------------------------------------------------------------------ #
    # Registration.
    # ------------------------------------------------------------------ #

    def register(self, process: Process) -> None:
        """Register ``process`` as the endpoint for its node id."""
        if process.node_id in self._processes:
            raise NetworkError(f"node {process.node_id} registered twice")
        self._processes[process.node_id] = process
        process.attach_network(self)
        self.topology.add_node(process.node_id)

    def process(self, node_id: NodeId) -> Process:
        """Return the process registered under ``node_id``."""
        try:
            return self._processes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id}") from None

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self._processes)

    # ------------------------------------------------------------------ #
    # Observation hooks (used by confidentiality tests and fault injection).
    # ------------------------------------------------------------------ #

    def add_tap(self, tap: MessageTap) -> None:
        """Install an observer called for every send.

        The tap may return a replacement message (used by Byzantine network
        experiments), the :data:`DROP` sentinel to swallow the transmission,
        or ``None`` to leave the message unchanged.  Taps see messages
        *before* fault-model processing.
        """
        self._taps.append(tap)

    def remove_tap(self, tap: MessageTap) -> None:
        """Uninstall a previously added tap (no-op if absent).

        Time-bounded Byzantine behaviours use this to heal: a node can be
        malicious for a window of virtual time and then return to correct
        behaviour.
        """
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Sending.
    # ------------------------------------------------------------------ #

    def send(self, source: NodeId, destination: NodeId, message: Message) -> None:
        """Transmit ``message`` from ``source`` to ``destination``.

        Unknown destinations are ignored (the node may have been removed by a
        fault-injection experiment); forbidden links raise
        :class:`TopologyError` when topology enforcement is on.
        """
        if self.enforce_topology:
            self.topology.check(source, destination)
        for tap in list(self._taps):
            replacement = tap(source, destination, message)
            if replacement is DROP:
                self.stats.drops_by_tap += 1
                return
            if replacement is not None:
                message = replacement
        self.stats.sends += 1
        self.stats.record_type(message.type_name())
        self.stats.bytes_sent += message.wire_size()

        target = self._processes.get(destination)
        if target is None:
            return
        plan = self.faults.plan(source, destination, message)
        for delay, payload in plan.deliveries:
            size = payload.wire_size()
            self.scheduler.call_after(
                delay,
                lambda payload=payload, size=size: target.deliver(source, payload, size),
                label=f"deliver:{message.type_name()}:{source}->{destination}",
            )
            self.stats.deliveries += 1

    def broadcast(self, source: NodeId, destinations: List[NodeId], message: Message) -> None:
        """Send ``message`` from ``source`` to every node in ``destinations``."""
        for destination in destinations:
            if destination != source:
                self.send(source, destination, message)
