"""Observability: per-node metrics registry and causal request tracing.

Config-gated by :class:`repro.config.ObservabilityConfig` (off by default),
strictly passive (no charges, no timers, no RNG, no wall clock), and wired
into every plane through the scheduler/process hooks in :mod:`repro.sim`.
"""

from .hub import DISABLED_HUB, ObservabilityHub
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from .trace import (
    TraceEvent,
    Tracer,
    read_trace_jsonl,
    request_trace_id,
    write_trace_jsonl,
)

__all__ = [
    "DISABLED_HUB",
    "ObservabilityHub",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "TraceEvent",
    "Tracer",
    "read_trace_jsonl",
    "request_trace_id",
    "write_trace_jsonl",
]
