"""Causal request tracing over virtual time.

A *trace* follows one client request end to end.  Its identity is derived
from the fields the protocol already carries everywhere -- the issuing
client's name and the client-local monotonically increasing request
timestamp -- so tracing adds nothing to any wire format: every hop that can
see a ``ClientRequest`` (or the certificate wrapping one) can reconstruct
the trace id with :func:`request_trace_id`.

Each hop records a point *span event* ``(trace_id, event, node, t_ms)``
where ``t_ms`` is the virtual clock reading at the hop.  The event
vocabulary (``submit``, ``admit``, ``order``, ``commit``, ``stage``,
``release``, ``execute``, ``vote_open``, ``vote_done``, ``collate``,
``reply``) is what the critical-path analyzer in
:mod:`repro.analysis.critical_path` folds into per-stage durations.

Recording is strictly append-only observation: no charges, no timers, no
RNG, no wall clock, so identical seeds produce byte-identical traces and a
traced run's virtual-time results match an untraced one exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, NamedTuple, Union


class TraceEvent(NamedTuple):
    """One hop of one request: where it was and when (virtual ms)."""

    trace_id: str
    event: str
    node: str
    t_ms: float


def request_trace_id(client: object, timestamp: int) -> str:
    """Trace id of the request ``(client, timestamp)`` -- the pair the
    protocol already uses to deduplicate and route replies."""
    name = getattr(client, "name", None)
    return f"{name if name is not None else client}:{timestamp}"


class Tracer:
    """Bounded append-only buffer of :class:`TraceEvent` records."""

    def __init__(self, enabled: bool = False, capacity: int = 1_000_000) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        self._events: List[TraceEvent] = []

    def record(self, trace_id: str, event: str, node: str, t_ms: float) -> None:
        if not self.enabled:
            return
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(TraceEvent(trace_id, event, node, t_ms))

    def events(self) -> List[TraceEvent]:
        """The recorded events, in recording order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write one JSON object per event; returns the number written."""
        return write_trace_jsonl(self._events, path)


def write_trace_jsonl(events: Iterable[TraceEvent], path: Union[str, Path]) -> int:
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps({
                "trace_id": event.trace_id,
                "event": event.event,
                "node": event.node,
                "t_ms": event.t_ms,
            }, sort_keys=True) + "\n")
            written += 1
    return written


def read_trace_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            events.append(TraceEvent(record["trace_id"], record["event"],
                                     record["node"], record["t_ms"]))
    return events
