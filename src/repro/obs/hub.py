"""The per-system observability hub.

One hub serves one :class:`~repro.core.system.SimulatedSystem`: it owns the
request tracer and the per-node metrics registries, and is attached to the
scheduler (``scheduler.obs``) before any process is constructed so that
:class:`~repro.sim.process.Process` can pick up its registry and the tracer
in its own ``__init__``.  A process built against a scheduler without a hub
(unit tests constructing processes by hand) silently gets the shared
disabled hub, which costs nothing and records nothing.

The hub also accepts *global* probes -- snapshot-time callables for
process-wide state that belongs to no node, such as the wire cache.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .registry import NULL_REGISTRY, MetricsRegistry
from .trace import Tracer


class ObservabilityHub:
    """Tracer plus per-node registries for one simulated system."""

    def __init__(self, config: Optional[object] = None) -> None:
        # Duck-typed to ObservabilityConfig so this package stays importable
        # without repro.config (and vice versa).
        self.metrics_enabled = bool(getattr(config, "metrics", False))
        self.tracing_enabled = bool(getattr(config, "tracing", False))
        capacity = int(getattr(config, "trace_capacity", 1_000_000))
        self.tracer = Tracer(enabled=self.tracing_enabled, capacity=capacity)
        self._registries: Dict[str, MetricsRegistry] = {}
        self._global_probes: Dict[str, Callable[[], object]] = {}

    @property
    def enabled(self) -> bool:
        return self.metrics_enabled or self.tracing_enabled

    def registry_for(self, node: str) -> MetricsRegistry:
        """The (per-node) registry for ``node``; a shared no-op if disabled."""
        if not self.metrics_enabled:
            return NULL_REGISTRY
        registry = self._registries.get(node)
        if registry is None:
            registry = self._registries[node] = MetricsRegistry(node)
        return registry

    def register_global_probe(self, name: str, probe: Callable[[], object]) -> None:
        if self.metrics_enabled:
            self._global_probes[name] = probe

    def metrics_snapshot(self) -> Dict[str, object]:
        """All registries and global probes as JSON-serialisable data."""
        return {
            "nodes": {node: registry.snapshot()
                      for node, registry in sorted(self._registries.items())},
            "global": {name: probe()
                       for name, probe in sorted(self._global_probes.items())},
        }


#: shared hub for schedulers that were never given one (records nothing)
DISABLED_HUB = ObservabilityHub()
