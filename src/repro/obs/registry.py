"""Per-node metrics registry: counters, gauges, histograms, and probes.

Every :class:`~repro.sim.process.Process` owns a registry (handed out by the
:class:`~repro.obs.hub.ObservabilityHub` attached to the scheduler).  The
instruments are deliberately minimal -- plain attribute bumps, no locking, no
wall-clock reads -- so recording a sample costs a few dict-free operations on
the hot path and *nothing at all* when observability is disabled: a disabled
registry hands back shared no-op singletons whose mutators are empty methods,
and components that cache their instrument objects at construction time
(``self._h_batch = metrics.histogram(...)``) therefore pay one no-op call per
event, never a lookup.

Besides live instruments, a registry accepts *probes*: named zero-argument
callables registered by components that already maintain their own counters
(the verified-certificate cache's hit/miss tallies, a batcher's totals, a
rebalance controller's load window).  Probes are only invoked at snapshot
time, which surfaces those ad-hoc counters through the registry with zero
hot-path cost.

All histogram semantics are upper-inclusive nearest-rank: bucket ``i`` counts
samples ``<= bounds[i]``, the final overflow bucket counts the rest, and
quantiles are answered from the cumulative bucket counts (exact min/max/sum
are tracked on the side).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence

#: default latency-style bucket upper bounds, in virtual milliseconds
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                   100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if any(b1 >= b2 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile answered from the buckets.

        Returns the upper bound of the bucket holding the target rank,
        clamped to the observed maximum (which is exact for the overflow
        bucket), so the answer is an upper bound on the true sample
        quantile that is off by at most one bucket width.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                if index == len(self.bounds):
                    return self.max
                return min(self.bounds[index], self.max)
        return self.max

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
            "buckets": dict(zip([f"le_{b:g}" for b in self.bounds]
                                + ["overflow"], self.bucket_counts)),
        }


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: shared no-op instruments handed out by disabled registries
NOOP_COUNTER = _NoopCounter("noop")
NOOP_GAUGE = _NoopGauge("noop")
NOOP_HISTOGRAM = _NoopHistogram("noop")


class MetricsRegistry:
    """One node's named instruments plus snapshot-time probes."""

    def __init__(self, node: str, enabled: bool = True) -> None:
        self.node = node
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._probes: Dict[str, Callable[[], object]] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NOOP_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NOOP_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        if not self.enabled:
            return NOOP_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def register_probe(self, name: str, probe: Callable[[], object]) -> None:
        """Attach a zero-argument callable read only at snapshot time."""
        if self.enabled:
            self._probes[name] = probe

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Everything this registry knows, as plain JSON-serialisable data."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
            "probes": {name: probe() for name, probe in sorted(self._probes.items())},
        }


#: the registry handed to every node when observability is disabled
NULL_REGISTRY = MetricsRegistry("disabled", enabled=False)
