"""Pluggable runtimes: one protocol stack, two execution substrates.

``build_runtime`` dispatches on :class:`repro.config.RuntimeConfig`:

* ``backend="sim"`` -- the deterministic virtual-time simulator
  (:class:`~repro.runtime.sim_rt.SimRuntime`), the substrate every test,
  gate benchmark, and fuzz campaign runs on;
* ``backend="asyncio"`` -- real localhost sockets, wall-clock timers, and
  an optional process pool for parallel certificate verification
  (:class:`~repro.runtime.asyncio_rt.AsyncioRuntime`).

See :mod:`repro.runtime.interface` for the contract a backend implements
and ``docs/ARCHITECTURE.md`` for where the seam sits in the system.
"""

from .interface import Runtime, build_runtime
from .sim_rt import SimRuntime

__all__ = ["Runtime", "build_runtime", "SimRuntime"]
