"""The Runtime seam: what a backend must provide to host a deployment.

Every deployment (:class:`repro.core.system.SimulatedSystem` and its
subclasses) is built against two objects -- a *scheduler* and a *network* --
and drives them through ``run`` / ``run_until``.  A :class:`Runtime` bundles
one compatible pair plus its lifecycle, so the same protocol code runs on
the deterministic virtual-time simulator or on real sockets and wall-clock
timers, chosen by :class:`repro.config.RuntimeConfig`.

A backend's **scheduler** must provide the surface protocol code actually
uses (see :class:`repro.sim.scheduler.Scheduler` for the reference
semantics):

* ``now`` -- monotonically non-decreasing milliseconds;
* ``call_at(when, callback, label)`` / ``call_after(delay, callback,
  label)`` returning timer handles with ``deadline``, ``active``, and
  ``cancel()``;
* ``events_processed`` -- a counter that increases between any two
  distinct dispatches (handlers use it as a cheap "same event?" stamp);
* ``random`` -- a :class:`~repro.sim.rand.DeterministicRandom`;
* ``obs`` -- the observability hub, installed by the system builder
  before any process is constructed;
* ``run(until=...)`` and ``run_until(predicate, timeout, description)``.

Its **network** must provide ``register`` / ``process`` / ``node_ids``,
``send`` / ``broadcast``, ``add_tap`` / ``remove_tap``, a writable
``topology`` attribute, and ``stats`` (see
:class:`repro.net.network.Network`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SystemConfig
    from ..crypto.keys import Keystore


class Runtime:
    """One scheduler/network pair plus lifecycle; backends subclass this."""

    #: backend name, as selected by ``RuntimeConfig.backend``
    backend: str = "abstract"

    #: the time source and timer service protocol code schedules against
    scheduler = None
    #: the transport protocol code sends through
    network = None

    def run(self, duration_ms: float) -> float:
        """Advance time by ``duration_ms``, processing whatever comes due."""
        return self.scheduler.run(until=self.scheduler.now + duration_ms)

    def run_until(self, predicate: Callable[[], bool], timeout_ms: float,
                  description: str = "condition") -> float:
        """Run until ``predicate`` holds or ``timeout_ms`` elapses."""
        return self.scheduler.run_until(predicate, timeout_ms, description)

    def close(self) -> None:
        """Release backend resources (sockets, worker processes, loops)."""

    # -- context-manager sugar so drivers can scope a deployment ---------- #

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_runtime(config: "SystemConfig", seed: int,
                  keystore: Optional["Keystore"] = None) -> Runtime:
    """Construct the backend selected by ``config.runtime.backend``.

    ``keystore`` is only needed by the asyncio backend (its crypto pool
    derives per-job key material in the dispatcher); the simulator ignores
    it.  Imports are local so the default sim path never pays for asyncio
    machinery.
    """
    backend = config.runtime.backend
    if backend == "sim":
        from .sim_rt import SimRuntime

        return SimRuntime(config, seed)
    if backend == "asyncio":
        from .asyncio_rt import AsyncioRuntime

        return AsyncioRuntime(config, seed, keystore=keystore)
    raise ValueError(f"unknown runtime backend {backend!r}")  # pragma: no cover
