"""The real runtime: asyncio tasks, localhost TCP, wall-clock timers.

This backend runs the *same* protocol objects the simulator runs -- nodes,
message queues, certificates, caches, all untouched -- but replaces the
three simulated substrates with real ones:

* **time**: :class:`RealTimeScheduler` reads the event loop's monotonic
  clock (milliseconds since construction) and arms timers with
  ``loop.call_later``;
* **transport**: :class:`RealTimeNetwork` gives every registered node an
  asyncio TCP server on ``127.0.0.1`` and ships each message as a
  length-prefixed pickled ``(sender, message)`` frame over a per-link
  connection;
* **cost**: virtual-time charges optionally burn real CPU
  (``RuntimeConfig.charge_scale``), and inbound certificate verification
  can be offloaded to a process pool (:class:`repro.crypto.pool.CryptoPool`)
  that warms each node's ``VerifiedCertificateCache`` before dispatch.

Invariants preserved relative to the simulator (the contracts the
boundary-module docstrings in ``sim/`` and ``net/`` state):

* per-node handler atomicity -- the loop is single-threaded and handlers
  are synchronous, so a node never observes two handlers interleaved;
* per-link FIFO -- one TCP connection per (source, destination) ordered
  pair, and a dispatcher that awaits each frame's (optional) pool
  pre-verification before reading the next, so pipelining crypto never
  reorders a link;
* timer semantics -- ``call_at``/``call_after`` handles expose
  ``deadline`` / ``active`` / ``cancel()``, and a cancelled timer never
  fires;
* at-most-once delivery, crashed nodes drop everything, taps observe
  (and may replace or drop) every send before transmission;
* the success-only verification-cache contract -- the pool records only
  facts that verified, under the provider's own keys.

Deliberately **not** preserved: determinism (real scheduling and real
sockets race; the simulator remains the substrate for tests and fuzzing)
and the network fault model (``NetworkConfig`` delays/drops are simulation
devices; here latency is the real localhost stack).  Transport trust:
frames are ``pickle`` on a loopback socket, which is only safe because the
transport is process-local test infrastructure -- the Byzantine threat
model is enforced where it always was, by certificate verification at the
protocol layer, never by the transport.
"""

from __future__ import annotations

import asyncio
import pickle
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, List, Optional, Set, Tuple

from ..config import SystemConfig
from ..crypto.keys import Keystore
from ..crypto.pool import CryptoPool, extract_verify_jobs, spin
from ..errors import LivenessTimeoutError, NetworkError, SimulationError
from ..net.message import Message
from ..net.network import DROP, MessageTap, NetworkStats
from ..net.topology import Topology
from ..obs import DISABLED_HUB, ObservabilityHub
from ..sim.process import Process
from ..sim.rand import DeterministicRandom
from ..util.ids import NodeId
from .interface import Runtime

_HEADER = 4  # frame length prefix, big-endian


class RealTimer:
    """Wall-clock timer handle, API-compatible with :class:`~repro.sim.scheduler.Timer`."""

    __slots__ = ("deadline", "_fired", "_cancelled", "_handle")

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self._fired = False
        self._cancelled = False
        self._handle: Optional[asyncio.TimerHandle] = None

    @property
    def active(self) -> bool:
        return not self._fired and not self._cancelled

    def cancel(self) -> None:
        if self._fired:
            return
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class RealTimeScheduler:
    """Scheduler facade over an asyncio event loop.

    ``now`` is wall milliseconds since construction (monotonic), timers are
    ``loop.call_later`` under the hood, and ``run`` / ``run_until`` drive
    the loop from synchronous caller code -- so a deployment built on this
    scheduler is exercised through the exact driver API
    (:meth:`~repro.core.system.SimulatedSystem.run_until` etc.) the
    simulator backend uses.
    """

    def __init__(self, seed: int = 0, poll_interval_ms: float = 0.5) -> None:
        self.loop = asyncio.new_event_loop()
        self.random = DeterministicRandom(seed)
        self.obs: ObservabilityHub = DISABLED_HUB
        self.poll_interval_ms = poll_interval_ms
        self._origin = self.loop.time()
        self._events_processed = 0
        #: async hooks run at the start of every drive (transport startup)
        self._start_hooks: List[Callable[[], Awaitable[None]]] = []

    # ------------------------------------------------------------------ #
    # The Scheduler surface protocol code uses.
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Wall-clock milliseconds since this scheduler was created."""
        return (self.loop.time() - self._origin) * 1000.0

    @property
    def events_processed(self) -> int:
        """Dispatches so far (timer fires + message deliveries).

        Strictly increases between distinct dispatches, which is all the
        protocol layer relies on (it stamps per-event memos with it).
        """
        return self._events_processed

    def note_dispatch(self) -> None:
        """Called by the transport once per delivered message."""
        self._events_processed += 1

    def call_at(self, when: float, callback: Callable[[], None],
                label: str = "") -> RealTimer:
        """Arm ``callback`` for absolute time ``when`` (clamped to now).

        Unlike the simulator this never raises for a past deadline: real
        clocks drift between computing a deadline and arming it, so a
        late timer simply fires as soon as the loop gets to it.
        """
        timer = RealTimer(max(when, self.now))
        delay = max(0.0, (when - self.now) / 1000.0)

        def _fire() -> None:
            if timer._cancelled:
                return
            timer._fired = True
            self._events_processed += 1
            callback()

        timer._handle = self.loop.call_later(delay, _fire)
        return timer

    def call_after(self, delay: float, callback: Callable[[], None],
                   label: str = "") -> RealTimer:
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.call_at(self.now + delay, callback, label)

    # ------------------------------------------------------------------ #
    # Driving the loop (the system driver's run/run_until surface).
    # ------------------------------------------------------------------ #

    def add_start_hook(self, hook: Callable[[], Awaitable[None]]) -> None:
        self._start_hooks.append(hook)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the loop until wall time ``until`` (required here).

        The simulator's "drain the event queue" default has no real-time
        analogue -- sockets never drain -- so an explicit horizon is
        mandatory.
        """
        if until is None:
            raise SimulationError(
                "the real-time scheduler needs an explicit 'until' horizon")
        self._drive(self._sleep_until(until))
        return self.now

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  description: str = "condition") -> float:
        """Run the loop until ``predicate()`` holds (checked every poll).

        Raises :class:`LivenessTimeoutError` after ``timeout`` wall ms,
        mirroring the simulator's contract.
        """
        if predicate():
            return self.now
        self._drive(self._poll(predicate, self.now + timeout, description))
        return self.now

    def _drive(self, coro) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self._with_startup(coro))

    async def _with_startup(self, coro):
        for hook in self._start_hooks:
            await hook()
        return await coro

    async def _sleep_until(self, until: float) -> None:
        delay = (until - self.now) / 1000.0
        if delay > 0:
            await asyncio.sleep(delay)

    async def _poll(self, predicate: Callable[[], bool], deadline: float,
                    description: str) -> None:
        interval = self.poll_interval_ms / 1000.0
        while True:
            if predicate():
                return
            if self.now >= deadline:
                raise LivenessTimeoutError(
                    f"{description} did not hold within the wall-clock "
                    f"timeout (now={self.now:.1f}ms)")
            await asyncio.sleep(interval)

    def close(self) -> None:
        if not self.loop.is_closed():
            self.loop.close()


@dataclass
class TransportStats:
    """Real-transport counters (in addition to the model-level NetworkStats)."""

    frames_sent: int = 0
    frames_delivered: int = 0
    bytes_on_wire: int = 0
    serialize_ms: float = 0.0
    deserialize_ms: float = 0.0

    def snapshot(self) -> dict:
        return {"frames_sent": self.frames_sent,
                "frames_delivered": self.frames_delivered,
                "bytes_on_wire": self.bytes_on_wire,
                "serialize_ms": round(self.serialize_ms, 3),
                "deserialize_ms": round(self.deserialize_ms, 3)}


class RealTimeNetwork:
    """Message transport over real localhost TCP sockets.

    API-compatible with :class:`repro.net.network.Network`: registration,
    topology enforcement, taps, stats, ``send``/``broadcast``.  Each
    registered node owns one TCP server; each (source, destination) pair
    that ever sends gets one outbound connection fed by a FIFO queue, so
    link ordering matches TCP's.  ``send`` is synchronous (protocol code
    is synchronous): it enqueues the encoded frame and returns; pump tasks
    move frames onto sockets, and per-node server handlers decode, run the
    optional crypto-pool pre-verification, and call ``deliver`` -- all on
    the scheduler's event loop.
    """

    def __init__(self, scheduler: RealTimeScheduler,
                 topology: Optional[Topology] = None,
                 enforce_topology: bool = True,
                 pool: Optional[CryptoPool] = None,
                 keystore: Optional[Keystore] = None,
                 config: Optional[SystemConfig] = None) -> None:
        self.scheduler = scheduler
        self.topology = topology or Topology.full()
        self.enforce_topology = enforce_topology
        self.stats = NetworkStats()
        self.transport = TransportStats()
        self.pool = pool
        self.keystore = keystore
        self.config = config
        self._charge_scale = config.runtime.charge_scale if config else 0.0
        self._processes: Dict[NodeId, Process] = {}
        self._taps: List[MessageTap] = []
        self._servers: Dict[NodeId, asyncio.base_events.Server] = {}
        self._ports: Dict[NodeId, int] = {}
        self._links: Dict[Tuple[NodeId, NodeId], asyncio.Queue] = {}
        self._pumped: Set[Tuple[NodeId, NodeId]] = set()
        self._tasks: Set[asyncio.Task] = set()
        self._writers: List[asyncio.StreamWriter] = []
        self._closed = False
        scheduler.add_start_hook(self._start)

    # ------------------------------------------------------------------ #
    # Registration (same contract as the simulated Network).
    # ------------------------------------------------------------------ #

    def register(self, process: Process) -> None:
        if process.node_id in self._processes:
            raise NetworkError(f"node {process.node_id} registered twice")
        self._processes[process.node_id] = process
        process.attach_network(self)
        self.topology.add_node(process.node_id)
        if self._charge_scale > 0:
            scale = self._charge_scale
            process._burn = lambda ms: spin(ms * scale)

    def process(self, node_id: NodeId) -> Process:
        try:
            return self._processes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id}") from None

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self._processes)

    def add_tap(self, tap: MessageTap) -> None:
        self._taps.append(tap)

    def remove_tap(self, tap: MessageTap) -> None:
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Sending.
    # ------------------------------------------------------------------ #

    def send(self, source: NodeId, destination: NodeId, message: Message) -> None:
        if self.enforce_topology:
            self.topology.check(source, destination)
        for tap in list(self._taps):
            replacement = tap(source, destination, message)
            if replacement is DROP:
                self.stats.drops_by_tap += 1
                return
            if replacement is not None:
                message = replacement
        self.stats.sends += 1
        self.stats.record_type(message.type_name())
        self.stats.bytes_sent += message.wire_size()
        if destination not in self._processes:
            return
        started = time.perf_counter()
        frame = pickle.dumps((source, message), protocol=pickle.HIGHEST_PROTOCOL)
        self.transport.serialize_ms += (time.perf_counter() - started) * 1000.0
        self.transport.frames_sent += 1
        self.transport.bytes_on_wire += len(frame) + _HEADER
        link = (source, destination)
        queue = self._links.get(link)
        if queue is None:
            queue = self._links[link] = asyncio.Queue()
        queue.put_nowait(frame)
        # A link first used mid-run gets its pump immediately; links used
        # before the first drive are pumped by the startup hook.
        if link not in self._pumped and self.scheduler.loop.is_running():
            self._spawn_pump(link)

    def broadcast(self, source: NodeId, destinations: List[NodeId],
                  message: Message) -> None:
        for destination in destinations:
            if destination != source:
                self.send(source, destination, message)

    # ------------------------------------------------------------------ #
    # Startup / transport tasks (run inside the event loop).
    # ------------------------------------------------------------------ #

    async def _start(self) -> None:
        """Idempotent per-drive startup: servers for every registered node,
        pumps for every link that already has traffic queued."""
        for node_id in list(self._processes):
            if node_id not in self._servers:
                await self._start_server(node_id)
        for link in list(self._links):
            if link not in self._pumped:
                self._spawn_pump(link)

    async def _start_server(self, node_id: NodeId) -> None:
        server = await asyncio.start_server(
            lambda reader, writer, node_id=node_id:
                self._serve(node_id, reader, writer),
            "127.0.0.1", 0)
        self._servers[node_id] = server
        self._ports[node_id] = server.sockets[0].getsockname()[1]

    def _spawn_pump(self, link: Tuple[NodeId, NodeId]) -> None:
        self._pumped.add(link)
        task = self.scheduler.loop.create_task(
            self._pump(link), name=f"pump:{link[0]}->{link[1]}")
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _pump(self, link: Tuple[NodeId, NodeId]) -> None:
        """Move frames from one link's queue onto its TCP connection."""
        _, destination = link
        queue = self._links[link]
        _, writer = await asyncio.open_connection(
            "127.0.0.1", self._ports[destination])
        self._writers.append(writer)
        while True:
            frame = await queue.get()
            writer.write(len(frame).to_bytes(_HEADER, "big") + frame)
            await writer.drain()

    async def _serve(self, node_id: NodeId, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Per-inbound-connection reader: decode, pre-verify, deliver.

        Frames on one connection are dispatched strictly in order (the
        pool pre-verification is awaited before the next read), so the
        per-link FIFO the sender's TCP stream provides survives dispatch.
        """
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        self._writers.append(writer)
        try:
            while True:
                header = await reader.readexactly(_HEADER)
                frame = await reader.readexactly(int.from_bytes(header, "big"))
                started = time.perf_counter()
                sender, message = pickle.loads(frame)
                self.transport.deserialize_ms += (
                    time.perf_counter() - started) * 1000.0
                await self._dispatch(node_id, sender, message)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return
        except asyncio.CancelledError:
            # Swallow teardown cancellation: asyncio.streams wraps this
            # handler in a task whose exception it inspects from a loop
            # callback, and a task that ends *cancelled* is logged as an
            # unhandled error there.  These tasks only ever end at close().
            return

    async def _dispatch(self, node_id: NodeId, sender: NodeId,
                        message: Message) -> None:
        target = self._processes.get(node_id)
        if target is None:
            return
        await self._preverify(target, message)
        self.transport.frames_delivered += 1
        self.stats.deliveries += 1
        self.scheduler.note_dispatch()
        target.deliver(sender, message, message.wire_size())

    async def _preverify(self, target: Process, message: Message) -> None:
        """Warm the destination's verification cache from the crypto pool.

        Only facts that verified are recorded (the cache's success-only
        contract); anything else is left for the node's inline checks.
        Facts already cached are skipped, so nothing is ever paid twice.
        """
        pool, keystore = self.pool, self.keystore
        if pool is None or not pool.enabled or keystore is None:
            return
        crypto = getattr(target, "crypto", None)
        if crypto is None or crypto.cache is None:
            return
        jobs, keys = extract_verify_jobs(
            target.node_id, keystore, crypto.costs, message,
            charge_scale=self._charge_scale)
        fresh = [(job, key) for job, key in zip(jobs, keys)
                 if not crypto.cache.seen(key)]
        if not fresh:
            return
        results = await pool.run(self.scheduler.loop,
                                 [job for job, _ in fresh])
        for (_, key), ok in zip(fresh, results):
            if ok:
                crypto.cache.add(key)

    # ------------------------------------------------------------------ #
    # Teardown.
    # ------------------------------------------------------------------ #

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        for writer in self._writers:
            writer.close()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()


class AsyncioRuntime(Runtime):
    """The asyncio backend: real scheduler + real network + crypto pool."""

    backend = "asyncio"

    def __init__(self, config: SystemConfig, seed: int,
                 keystore: Optional[Keystore] = None) -> None:
        self.config = config
        self.scheduler = RealTimeScheduler(
            seed, poll_interval_ms=config.runtime.poll_interval_ms)
        self.pool = CryptoPool(config.runtime.crypto_pool)
        self.network = RealTimeNetwork(
            self.scheduler, topology=Topology.full(),
            pool=self.pool, keystore=keystore, config=config)
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        loop = self.scheduler.loop
        if not loop.is_closed():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.network.aclose())
        self.pool.close()
        self.scheduler.close()
