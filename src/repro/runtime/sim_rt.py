"""The virtual-time backend: the deterministic simulator, unchanged.

This wrapper exists so :class:`repro.core.system.SimulatedSystem` can build
every deployment through :func:`repro.runtime.build_runtime`; it constructs
exactly the objects (and in exactly the order) the system builder
constructed before the runtime seam existed, so simulation results are
bit-identical to the pre-refactor code.  CI's obs-overhead job and the
gate-benchmark baselines effectively pin that equivalence.

Everything that makes the simulator the repo's test substrate lives
downstream of here untouched: the discrete-event
:class:`~repro.sim.scheduler.Scheduler`, the fault-model-driven
:class:`~repro.net.network.Network`, and the per-label
:class:`~repro.sim.rand.DeterministicRandom` forks.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..net.faults import NetworkFaultModel
from ..net.network import Network
from ..net.topology import Topology
from ..sim.scheduler import Scheduler
from .interface import Runtime


class SimRuntime(Runtime):
    """Deterministic virtual-time scheduler + simulated network."""

    backend = "sim"

    def __init__(self, config: SystemConfig, seed: int) -> None:
        self.config = config
        self.scheduler = Scheduler(seed)
        faults = NetworkFaultModel(config.network,
                                   self.scheduler.random.fork("network"))
        self.network = Network(self.scheduler, topology=Topology.full(),
                               faults=faults)

    def close(self) -> None:
        """Nothing to release: the simulator holds no external resources."""
