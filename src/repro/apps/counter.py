"""A tiny counter service.

The simplest *stateful* application: useful in tests because divergence
between replicas (or lost/duplicated executions) is immediately visible in
the counter value returned to clients.
"""

from __future__ import annotations

import json

from ..statemachine.interface import Operation, OperationResult, StateMachine
from ..statemachine.nondet import NonDetInput


def increment(amount: int = 1) -> Operation:
    """Operation that adds ``amount`` to the counter and returns the new value."""
    return Operation(kind="increment", args={"amount": amount})


def read_counter() -> Operation:
    """Operation that returns the current counter value without changing it."""
    return Operation(kind="read", args={})


class CounterService(StateMachine):
    """A replicated integer counter."""

    def __init__(self, initial: int = 0) -> None:
        self.value = initial
        self.operations_applied = 0

    def execute(self, operation: Operation, nondet: NonDetInput) -> OperationResult:
        self.operations_applied += 1
        if operation.kind == "increment":
            amount = int(operation.args.get("amount", 1))
            self.value += amount
            return OperationResult(value=self.value, size=8)
        if operation.kind == "read":
            return OperationResult(value=self.value, size=8)
        return OperationResult(value=None, error=f"unknown operation {operation.kind}")

    def checkpoint(self) -> bytes:
        return json.dumps({"value": self.value,
                           "operations_applied": self.operations_applied}).encode()

    def restore(self, data: bytes) -> None:
        state = json.loads(data.decode())
        self.value = state["value"]
        self.operations_applied = state["operations_applied"]

    def reset(self) -> None:
        self.value = 0
        self.operations_applied = 0
