"""The null server used by the paper's microbenchmarks (Sections 5.2-5.3).

It reads a request of a specified size and produces a reply of a specified
size with no application processing, so every millisecond measured by the
latency and throughput benchmarks is protocol and cryptography overhead.
"""

from __future__ import annotations

from typing import Dict

from ..statemachine.interface import Operation, OperationResult, StateMachine
from ..statemachine.nondet import NonDetInput


def null_operation(request_bytes: int = 40, reply_bytes: int = 40,
                   processing_ms: float = 0.0, tag: int = 0) -> Operation:
    """Build a null-server operation with modelled request/reply sizes.

    ``tag`` distinguishes otherwise-identical operations so tests can check
    which request produced which reply.
    """
    return Operation(kind="null",
                     args={"reply_bytes": reply_bytes,
                           "processing_ms": processing_ms,
                           "tag": tag},
                     body_size=request_bytes,
                     reply_size=reply_bytes)


class NullService(StateMachine):
    """A state machine whose only state is the count of executed requests."""

    def __init__(self) -> None:
        self.executed = 0

    def execute(self, operation: Operation, nondet: NonDetInput) -> OperationResult:
        if operation.kind != "null":
            return OperationResult(value=None, error=f"unknown operation {operation.kind}")
        self.executed += 1
        reply_bytes = int(operation.args.get("reply_bytes", operation.reply_size or 0))
        processing_ms = float(operation.args.get("processing_ms", 0.0))
        return OperationResult(value={"ok": True, "tag": operation.args.get("tag", 0),
                                      "count": self.executed},
                               size=reply_bytes, processing_ms=processing_ms)

    def checkpoint(self) -> bytes:
        return self.executed.to_bytes(8, "big")

    def restore(self, data: bytes) -> None:
        self.executed = int.from_bytes(data, "big")

    def reset(self) -> None:
        self.executed = 0
