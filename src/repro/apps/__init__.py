"""Replicated applications used by the examples, tests, and benchmarks."""

from .null_service import NullService
from .counter import CounterService
from .kvstore import KeyValueStore
from .nfs import NfsService, NfsError

__all__ = [
    "NullService",
    "CounterService",
    "KeyValueStore",
    "NfsService",
    "NfsError",
]
