"""An NFS-like replicated file service.

The paper's macro-benchmark replicates an NFS server behind the BFT protocol
and runs the (modified) Andrew benchmark against it.  This module provides an
in-memory file service exposing the NFS operations that benchmark exercises
-- lookup, getattr, create, mkdir, read, write, remove, rmdir, readdir,
rename -- behind the same replication interface as every other application.

NFS is the paper's canonical example of application nondeterminism: real
servers pick arbitrary file handles and set last-access/modify timestamps
from their local clocks, which would make replicas diverge.  Following
Section 3.1.4, all such values are derived deterministically from the
nondeterminism inputs chosen obliviously by the agreement cluster, through
the :class:`~repro.statemachine.nondet.AbstractionLayer`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import StateMachineError
from ..statemachine.interface import Operation, OperationResult, StateMachine
from ..statemachine.nondet import AbstractionLayer, NonDetInput


class NfsError(StateMachineError):
    """An NFS operation failed (missing file, wrong type, already exists...)."""


# --------------------------------------------------------------------- #
# Operation constructors (the client-side API).
# --------------------------------------------------------------------- #

def nfs_lookup(path: str) -> Operation:
    """Resolve ``path`` to a file handle and attributes."""
    return Operation(kind="lookup", args={"path": path}, body_size=64)


def nfs_getattr(path: str) -> Operation:
    """Read the attributes of ``path``."""
    return Operation(kind="getattr", args={"path": path}, body_size=64)


def nfs_mkdir(path: str) -> Operation:
    """Create the directory ``path`` (parent must exist)."""
    return Operation(kind="mkdir", args={"path": path}, body_size=80)


def nfs_create(path: str) -> Operation:
    """Create an empty regular file at ``path``."""
    return Operation(kind="create", args={"path": path}, body_size=80)


def nfs_write(path: str, offset: int, data_size: int, data: str = "") -> Operation:
    """Write ``data`` (modelled as ``data_size`` bytes) at ``offset``."""
    return Operation(kind="write",
                     args={"path": path, "offset": offset,
                           "size": data_size, "data": data},
                     body_size=96 + data_size)


def nfs_read(path: str, offset: int = 0, size: int = 4096) -> Operation:
    """Read up to ``size`` bytes at ``offset``."""
    return Operation(kind="read", args={"path": path, "offset": offset, "size": size},
                     body_size=80, reply_size=size)


def nfs_readdir(path: str) -> Operation:
    """List the entries of directory ``path``."""
    return Operation(kind="readdir", args={"path": path}, body_size=64)


def nfs_remove(path: str) -> Operation:
    """Remove the regular file at ``path``."""
    return Operation(kind="remove", args={"path": path}, body_size=64)


def nfs_rmdir(path: str) -> Operation:
    """Remove the (empty) directory at ``path``."""
    return Operation(kind="rmdir", args={"path": path}, body_size=64)


def nfs_rename(source: str, destination: str) -> Operation:
    """Rename ``source`` to ``destination``."""
    return Operation(kind="rename", args={"source": source, "destination": destination},
                     body_size=128)


# --------------------------------------------------------------------- #
# The file service.
# --------------------------------------------------------------------- #

@dataclass
class _Inode:
    """One file or directory."""

    handle: str
    is_dir: bool
    size: int = 0
    data_len: int = 0
    content: str = ""
    mtime_ms: float = 0.0
    atime_ms: float = 0.0
    children: Dict[str, str] = field(default_factory=dict)  # name -> path (dirs only)

    def attributes(self) -> Dict[str, Any]:
        return {
            "handle": self.handle,
            "type": "dir" if self.is_dir else "file",
            "size": self.size,
            "mtime_ms": self.mtime_ms,
            "atime_ms": self.atime_ms,
        }


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        path = "/" + path
    while "//" in path:
        path = path.replace("//", "/")
    if len(path) > 1 and path.endswith("/"):
        path = path[:-1]
    return path


def _parent(path: str) -> Tuple[str, str]:
    path = _normalize(path)
    if path == "/":
        raise NfsError("the root directory has no parent")
    parent, _, name = path.rpartition("/")
    return (parent or "/", name)


class NfsService(StateMachine):
    """Deterministic in-memory NFS-like file service."""

    def __init__(self) -> None:
        self._files: Dict[str, _Inode] = {}
        self.operations_applied = 0
        self._files["/"] = _Inode(handle="root", is_dir=True)

    # ------------------------------------------------------------------ #
    # StateMachine interface.
    # ------------------------------------------------------------------ #

    def execute(self, operation: Operation, nondet: NonDetInput) -> OperationResult:
        abstraction = AbstractionLayer(nondet)
        self.operations_applied += 1
        handler = getattr(self, f"_op_{operation.kind}", None)
        if handler is None:
            return OperationResult(value=None, error=f"unknown operation {operation.kind}")
        # Workloads may attach modelled compute time (e.g. the Andrew
        # benchmark's compile phase) to any operation.
        processing_ms = float(operation.args.get("processing_ms", 0.0))
        try:
            value, size = handler(operation.args, abstraction)
        except NfsError as exc:
            return OperationResult(value={"error": str(exc)}, size=32, error=str(exc),
                                   processing_ms=processing_ms)
        return OperationResult(value=value, size=size, processing_ms=processing_ms)

    def checkpoint(self) -> bytes:
        serial = {
            path: {
                "handle": inode.handle, "is_dir": inode.is_dir, "size": inode.size,
                "data_len": inode.data_len, "content": inode.content,
                "mtime_ms": inode.mtime_ms, "atime_ms": inode.atime_ms,
                "children": inode.children,
            }
            for path, inode in self._files.items()
        }
        return json.dumps({"files": serial, "ops": self.operations_applied},
                          sort_keys=True).encode()

    def restore(self, data: bytes) -> None:
        state = json.loads(data.decode())
        self._files = {
            path: _Inode(handle=entry["handle"], is_dir=entry["is_dir"],
                         size=entry["size"], data_len=entry["data_len"],
                         content=entry["content"], mtime_ms=entry["mtime_ms"],
                         atime_ms=entry["atime_ms"], children=dict(entry["children"]))
            for path, entry in state["files"].items()
        }
        self.operations_applied = state["ops"]

    def reset(self) -> None:
        self._files = {"/": _Inode(handle="root", is_dir=True)}
        self.operations_applied = 0

    # ------------------------------------------------------------------ #
    # Internal helpers.
    # ------------------------------------------------------------------ #

    def _require(self, path: str, want_dir: Optional[bool] = None) -> _Inode:
        path = _normalize(path)
        inode = self._files.get(path)
        if inode is None:
            raise NfsError(f"no such file or directory: {path}")
        if want_dir is True and not inode.is_dir:
            raise NfsError(f"not a directory: {path}")
        if want_dir is False and inode.is_dir:
            raise NfsError(f"is a directory: {path}")
        return inode

    def _create_node(self, path: str, is_dir: bool,
                     abstraction: AbstractionLayer) -> _Inode:
        path = _normalize(path)
        if path in self._files:
            raise NfsError(f"already exists: {path}")
        parent_path, name = _parent(path)
        parent = self._require(parent_path, want_dir=True)
        # The file handle and timestamps are the nondeterministic values a
        # real NFS server would pick arbitrarily; here they are derived
        # deterministically from the agreed nondeterminism inputs.
        inode = _Inode(handle=abstraction.derive_handle(f"handle:{path}"),
                       is_dir=is_dir,
                       mtime_ms=abstraction.timestamp(),
                       atime_ms=abstraction.timestamp())
        self._files[path] = inode
        parent.children[name] = path
        parent.mtime_ms = abstraction.timestamp()
        return inode

    # ------------------------------------------------------------------ #
    # Operation handlers (each returns (value, reply_size)).
    # ------------------------------------------------------------------ #

    def _op_lookup(self, args: Dict[str, Any],
                   abstraction: AbstractionLayer) -> Tuple[Any, int]:
        inode = self._require(args["path"])
        return ({"attributes": inode.attributes()}, 96)

    def _op_getattr(self, args: Dict[str, Any],
                    abstraction: AbstractionLayer) -> Tuple[Any, int]:
        inode = self._require(args["path"])
        return ({"attributes": inode.attributes()}, 96)

    def _op_mkdir(self, args: Dict[str, Any],
                  abstraction: AbstractionLayer) -> Tuple[Any, int]:
        inode = self._create_node(args["path"], is_dir=True, abstraction=abstraction)
        return ({"attributes": inode.attributes()}, 96)

    def _op_create(self, args: Dict[str, Any],
                   abstraction: AbstractionLayer) -> Tuple[Any, int]:
        inode = self._create_node(args["path"], is_dir=False, abstraction=abstraction)
        return ({"attributes": inode.attributes()}, 96)

    def _op_write(self, args: Dict[str, Any],
                  abstraction: AbstractionLayer) -> Tuple[Any, int]:
        path = _normalize(args["path"])
        if path not in self._files:
            self._create_node(path, is_dir=False, abstraction=abstraction)
        inode = self._require(path, want_dir=False)
        offset = int(args.get("offset", 0))
        size = int(args.get("size", len(args.get("data", ""))))
        data = args.get("data", "")
        if data:
            # Store a bounded amount of real content so reads can verify it.
            inode.content = (inode.content[:offset] + data)[:4096]
        inode.data_len = max(inode.data_len, offset + size)
        inode.size = inode.data_len
        inode.mtime_ms = abstraction.timestamp()
        return ({"written": size, "size": inode.size}, 32)

    def _op_read(self, args: Dict[str, Any],
                 abstraction: AbstractionLayer) -> Tuple[Any, int]:
        inode = self._require(args["path"], want_dir=False)
        offset = int(args.get("offset", 0))
        size = int(args.get("size", 4096))
        available = max(0, inode.data_len - offset)
        returned = min(size, available)
        data = inode.content[offset:offset + returned]
        inode.atime_ms = abstraction.timestamp()
        return ({"data": data, "bytes": returned, "eof": offset + returned >= inode.data_len},
                32 + returned)

    def _op_readdir(self, args: Dict[str, Any],
                    abstraction: AbstractionLayer) -> Tuple[Any, int]:
        inode = self._require(args["path"], want_dir=True)
        names = sorted(inode.children)
        inode.atime_ms = abstraction.timestamp()
        return ({"entries": names}, 32 + 16 * len(names))

    def _op_remove(self, args: Dict[str, Any],
                   abstraction: AbstractionLayer) -> Tuple[Any, int]:
        path = _normalize(args["path"])
        self._require(path, want_dir=False)
        parent_path, name = _parent(path)
        parent = self._require(parent_path, want_dir=True)
        del self._files[path]
        parent.children.pop(name, None)
        parent.mtime_ms = abstraction.timestamp()
        return ({"removed": True}, 16)

    def _op_rmdir(self, args: Dict[str, Any],
                  abstraction: AbstractionLayer) -> Tuple[Any, int]:
        path = _normalize(args["path"])
        inode = self._require(path, want_dir=True)
        if inode.children:
            raise NfsError(f"directory not empty: {path}")
        if path == "/":
            raise NfsError("cannot remove the root directory")
        parent_path, name = _parent(path)
        parent = self._require(parent_path, want_dir=True)
        del self._files[path]
        parent.children.pop(name, None)
        parent.mtime_ms = abstraction.timestamp()
        return ({"removed": True}, 16)

    def _op_rename(self, args: Dict[str, Any],
                   abstraction: AbstractionLayer) -> Tuple[Any, int]:
        source = _normalize(args["source"])
        destination = _normalize(args["destination"])
        inode = self._require(source)
        if destination in self._files:
            raise NfsError(f"already exists: {destination}")
        src_parent_path, src_name = _parent(source)
        dst_parent_path, dst_name = _parent(destination)
        src_parent = self._require(src_parent_path, want_dir=True)
        dst_parent = self._require(dst_parent_path, want_dir=True)
        # Move the inode and every descendant path under the new prefix.
        moved = {path: node for path, node in self._files.items()
                 if path == source or path.startswith(source + "/")}
        for path, node in moved.items():
            del self._files[path]
        for path, node in moved.items():
            new_path = destination + path[len(source):]
            self._files[new_path] = node
            if node.is_dir:
                node.children = {
                    name: destination + child[len(source):]
                    for name, child in node.children.items()
                }
        src_parent.children.pop(src_name, None)
        dst_parent.children[dst_name] = destination
        src_parent.mtime_ms = abstraction.timestamp()
        dst_parent.mtime_ms = abstraction.timestamp()
        return ({"renamed": True}, 16)

    # ------------------------------------------------------------------ #
    # Inspection helpers (tests only).
    # ------------------------------------------------------------------ #

    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    def file_count(self) -> int:
        return len(self._files)

    def tree(self) -> List[str]:
        return sorted(self._files)
