"""A replicated key-value store.

Used by the ``confidential_kvstore`` example and by tests that need a state
machine with a richer operation mix (put/get/delete/list/compare-and-swap)
than the counter, while remaining fully deterministic.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..statemachine.interface import Operation, OperationResult, StateMachine
from ..statemachine.nondet import NonDetInput


def put(key: str, value: Any) -> Operation:
    """Store ``value`` under ``key`` (overwrites)."""
    return Operation(kind="put", args={"key": key, "value": value},
                     body_size=64 + len(str(value)))


def get(key: str) -> Operation:
    """Read the value stored under ``key`` (None if absent)."""
    return Operation(kind="get", args={"key": key}, body_size=64)


def delete(key: str) -> Operation:
    """Remove ``key``; returns whether it existed."""
    return Operation(kind="delete", args={"key": key}, body_size=64)


def compare_and_swap(key: str, expected: Any, value: Any) -> Operation:
    """Atomically replace ``key``'s value if it currently equals ``expected``."""
    return Operation(kind="cas", args={"key": key, "expected": expected, "value": value},
                     body_size=96)


def list_keys(prefix: str = "") -> Operation:
    """List keys starting with ``prefix`` in sorted order."""
    return Operation(kind="list", args={"prefix": prefix}, body_size=64)


def extract_key(operation: Operation) -> Optional[str]:
    """Routing key of a key-value operation (``repro.sharding``).

    Every correct replica and client must extract the same key from the same
    operation, so the shard router can deterministically map ordered requests
    to the execution cluster owning their state.  Point operations route by
    their key; ``list`` routes by its prefix (an empty prefix -- and any
    unknown operation kind -- returns ``None``, which partitioners map to a
    fixed default shard, so ``list`` only enumerates keys of one shard).
    """
    key = operation.args.get("key")
    if key is not None:
        return str(key)
    prefix = operation.args.get("prefix")
    if prefix:
        return str(prefix)
    return None


class KeyValueStore(StateMachine):
    """A deterministic in-memory key-value store."""

    #: key-extraction function used by the shard router for this application
    extract_key = staticmethod(extract_key)

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.operations_applied = 0

    def execute(self, operation: Operation, nondet: NonDetInput) -> OperationResult:
        self.operations_applied += 1
        kind = operation.kind
        args = operation.args
        if kind == "put":
            self._data[args["key"]] = args["value"]
            return OperationResult(value={"stored": True}, size=16)
        if kind == "get":
            value = self._data.get(args["key"])
            return OperationResult(value={"value": value, "found": args["key"] in self._data},
                                   size=16 + len(str(value)))
        if kind == "delete":
            existed = args["key"] in self._data
            self._data.pop(args["key"], None)
            return OperationResult(value={"deleted": existed}, size=16)
        if kind == "cas":
            current = self._data.get(args["key"])
            if current == args["expected"]:
                self._data[args["key"]] = args["value"]
                return OperationResult(value={"swapped": True, "value": args["value"]}, size=24)
            return OperationResult(value={"swapped": False, "value": current}, size=24)
        if kind == "list":
            prefix = args.get("prefix", "")
            keys = sorted(k for k in self._data if k.startswith(prefix))
            return OperationResult(value={"keys": keys}, size=16 + 8 * len(keys))
        return OperationResult(value=None, error=f"unknown operation {kind}")

    # ------------------------------------------------------------------ #
    # Checkpointing.
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> bytes:
        return json.dumps({"data": self._data,
                           "operations_applied": self.operations_applied},
                          sort_keys=True).encode()

    def restore(self, data: bytes) -> None:
        state = json.loads(data.decode())
        self._data = dict(state["data"])
        self.operations_applied = state["operations_applied"]

    def reset(self) -> None:
        self._data.clear()
        self.operations_applied = 0

    # ------------------------------------------------------------------ #
    # Partial-state handoff (dynamic shard rebalancing).
    # ------------------------------------------------------------------ #

    @staticmethod
    def _in_range(key: str, lo: Optional[str], hi: Optional[str]) -> bool:
        return (lo is None or key >= lo) and (hi is None or key < hi)

    def extract_range(self, lo: Optional[str], hi: Optional[str]) -> bytes:
        moved = {key: self._data[key] for key in sorted(self._data)
                 if self._in_range(key, lo, hi)}
        for key in moved:
            del self._data[key]
        return json.dumps({"entries": moved}, sort_keys=True).encode()

    def install_range(self, lo: Optional[str], hi: Optional[str],
                      data: bytes) -> None:
        for key in [k for k in self._data if self._in_range(k, lo, hi)]:
            del self._data[key]
        self._data.update(json.loads(data.decode())["entries"])

    # ------------------------------------------------------------------ #
    # Direct inspection (tests only; not part of the replicated API).
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._data)
