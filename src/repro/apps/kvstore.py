"""A replicated key-value store.

Used by the ``confidential_kvstore`` example and by tests that need a state
machine with a richer operation mix (put/get/delete/list/compare-and-swap)
than the counter, while remaining fully deterministic.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..statemachine.interface import Operation, OperationResult, StateMachine
from ..statemachine.nondet import NonDetInput


def put(key: str, value: Any) -> Operation:
    """Store ``value`` under ``key`` (overwrites)."""
    return Operation(kind="put", args={"key": key, "value": value},
                     body_size=64 + len(str(value)))


def get(key: str) -> Operation:
    """Read the value stored under ``key`` (None if absent)."""
    return Operation(kind="get", args={"key": key}, body_size=64)


def delete(key: str) -> Operation:
    """Remove ``key``; returns whether it existed."""
    return Operation(kind="delete", args={"key": key}, body_size=64)


def compare_and_swap(key: str, expected: Any, value: Any) -> Operation:
    """Atomically replace ``key``'s value if it currently equals ``expected``."""
    return Operation(kind="cas", args={"key": key, "expected": expected, "value": value},
                     body_size=96)


def list_keys(prefix: str = "") -> Operation:
    """List keys starting with ``prefix`` in sorted order."""
    return Operation(kind="list", args={"prefix": prefix}, body_size=64)


def multi_get(keys, epoch: Optional[int] = None) -> Operation:
    """Snapshot read over several keys (possibly on several shards).

    In a sharded deployment with cross-shard operations enabled, the read
    executes at a consistent cut: every key's value comes from the same
    deterministic prefix of the agreed order.  ``epoch`` pins the
    partition-map epoch the reader expects (the shard-aware client stamps
    its own cursor in automatically); a cut that moves the map under the
    operation aborts it deterministically instead of answering from a
    torn key->shard assignment.
    """
    ordered = sorted(str(key) for key in keys)
    return Operation(kind="multi_get", args={"keys": ordered, "epoch": epoch},
                     body_size=64 + 16 * len(ordered))


def transaction(reads: Dict[str, Any], writes: Dict[str, Any],
                epoch: Optional[int] = None) -> Operation:
    """Write transaction with read-set validation.

    Commits -- applying every write atomically across all touched shards --
    if and only if every key in ``reads`` currently holds its expected
    value at the transaction's consistent cut; otherwise aborts with the
    observed values.  An empty read set commits unconditionally (an atomic
    multi-shard write).
    """
    return Operation(kind="txn",
                     args={"reads": dict(reads), "writes": dict(writes),
                           "epoch": epoch},
                     body_size=64 + 32 * (len(reads) + len(writes)))


def extract_key(operation: Operation) -> Optional[str]:
    """Routing key of a key-value operation (``repro.sharding``).

    Every correct replica and client must extract the same key from the same
    operation, so the shard router can deterministically map ordered requests
    to the execution cluster owning their state.  Point operations route by
    their key; ``list`` routes by its prefix (an empty prefix -- and any
    unknown operation kind -- returns ``None``, which partitioners map to a
    fixed default shard, so ``list`` only enumerates keys of one shard).
    Multi-key operations route by their smallest key -- the representative
    used when all their keys happen to live on one shard (the cross-shard
    marker path takes over otherwise).
    """
    keys = extract_keys(operation)
    if keys:
        return keys[0]
    key = operation.args.get("key")
    if key is not None:
        return str(key)
    prefix = operation.args.get("prefix")
    if prefix:
        return str(prefix)
    return None


def extract_keys(operation: Operation) -> Optional[Tuple[str, ...]]:
    """All routing keys of a multi-key operation, sorted (None otherwise).

    The shard router uses this to classify an operation as cross-shard:
    when the keys map to more than one execution cluster, the operation is
    ordered as a consistent-cut marker instead of a normal request.
    """
    if operation.kind == "multi_get":
        return tuple(sorted(str(key) for key in operation.args.get("keys", ())))
    if operation.kind == "txn":
        keys = set(operation.args.get("reads", {})) | set(
            operation.args.get("writes", {}))
        return tuple(sorted(str(key) for key in keys))
    return None


class KeyValueStore(StateMachine):
    """A deterministic in-memory key-value store."""

    #: key-extraction function used by the shard router for this application
    extract_key = staticmethod(extract_key)
    #: multi-key extraction (cross-shard operation classification)
    extract_keys = staticmethod(extract_keys)

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.operations_applied = 0

    def execute(self, operation: Operation, nondet: NonDetInput) -> OperationResult:
        self.operations_applied += 1
        kind = operation.kind
        args = operation.args
        if kind == "put":
            self._data[args["key"]] = args["value"]
            return OperationResult(value={"stored": True}, size=16)
        if kind == "get":
            value = self._data.get(args["key"])
            return OperationResult(value={"value": value, "found": args["key"] in self._data},
                                   size=16 + len(str(value)))
        if kind == "delete":
            existed = args["key"] in self._data
            self._data.pop(args["key"], None)
            return OperationResult(value={"deleted": existed}, size=16)
        if kind == "cas":
            current = self._data.get(args["key"])
            if current == args["expected"]:
                self._data[args["key"]] = args["value"]
                return OperationResult(value={"swapped": True, "value": args["value"]}, size=24)
            return OperationResult(value={"swapped": False, "value": current}, size=24)
        if kind == "list":
            prefix = args.get("prefix", "")
            keys = sorted(k for k in self._data if k.startswith(prefix))
            return OperationResult(value={"keys": keys}, size=16 + 8 * len(keys))
        if kind == "multi_get":
            # Single-shard execution of a multi-key read (all keys on this
            # shard, or an unsharded deployment): trivially a snapshot.
            values = self.snapshot_read(args.get("keys", ()))
            return OperationResult(value={"values": values},
                                   size=16 + 16 * len(values))
        if kind == "txn":
            reads = args.get("reads", {})
            writes = args.get("writes", {})
            observed = self.snapshot_read(reads)
            committed = all(observed.get(key) == expected
                            for key, expected in reads.items())
            if committed:
                self.apply_writes(writes)
            return OperationResult(value={"committed": committed,
                                          "observed": observed},
                                   size=24 + 16 * len(observed))
        return OperationResult(value=None, error=f"unknown operation {kind}")

    # ------------------------------------------------------------------ #
    # Checkpointing.
    # ------------------------------------------------------------------ #

    def checkpoint(self) -> bytes:
        return json.dumps({"data": self._data,
                           "operations_applied": self.operations_applied},
                          sort_keys=True).encode()

    def restore(self, data: bytes) -> None:
        state = json.loads(data.decode())
        self._data = dict(state["data"])
        self.operations_applied = state["operations_applied"]

    def reset(self) -> None:
        self._data.clear()
        self.operations_applied = 0

    # ------------------------------------------------------------------ #
    # Partial-state handoff (dynamic shard rebalancing).
    # ------------------------------------------------------------------ #

    @staticmethod
    def _in_range(key: str, lo: Optional[str], hi: Optional[str]) -> bool:
        return (lo is None or key >= lo) and (hi is None or key < hi)

    def extract_range(self, lo: Optional[str], hi: Optional[str]) -> bytes:
        moved = {key: self._data[key] for key in sorted(self._data)
                 if self._in_range(key, lo, hi)}
        for key in moved:
            del self._data[key]
        return json.dumps({"entries": moved}, sort_keys=True).encode()

    def install_range(self, lo: Optional[str], hi: Optional[str],
                      data: bytes) -> None:
        for key in [k for k in self._data if self._in_range(k, lo, hi)]:
            del self._data[key]
        self._data.update(json.loads(data.decode())["entries"])

    # ------------------------------------------------------------------ #
    # Multi-key sub-operations (cross-shard operations at a consistent cut).
    # ------------------------------------------------------------------ #

    def snapshot_read(self, keys) -> Dict[str, Any]:
        return {str(key): self._data.get(str(key)) for key in keys}

    def apply_writes(self, writes: Dict[str, Any]) -> None:
        for key, value in writes.items():
            self._data[str(key)] = value
        self.operations_applied += len(writes)

    # ------------------------------------------------------------------ #
    # Direct inspection (tests only; not part of the replicated API).
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._data)
