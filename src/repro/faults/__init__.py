"""Fault injection: crash faults and Byzantine behaviours.

The paper's fault model allows arbitrary (Byzantine) behaviour from up to
``f`` agreement nodes, ``g`` execution nodes, and ``h`` privacy-firewall
filters.  This package provides:

* :class:`FaultInjector` -- schedule crashes and recoveries at virtual times;
* Byzantine *behaviours* that wrap a correct node and corrupt its outputs
  (wrong reply bodies, leaked plaintext, equivocation, silence), used by the
  safety and confidentiality tests to show that the protocol masks them.
"""

from .injector import FaultInjector, FaultPlan
from .byzantine import (
    ByzantineBehaviour,
    CorruptReplyBehaviour,
    LeakPlaintextBehaviour,
    SilentBehaviour,
    make_byzantine,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "ByzantineBehaviour",
    "CorruptReplyBehaviour",
    "LeakPlaintextBehaviour",
    "SilentBehaviour",
    "make_byzantine",
]
