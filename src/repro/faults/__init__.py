"""Fault injection: crash faults and Byzantine behaviours.

The paper's fault model allows arbitrary (Byzantine) behaviour from up to
``f`` agreement nodes, ``g`` execution nodes, and ``h`` privacy-firewall
filters.  This package provides:

* :class:`FaultInjector` -- schedule crashes, recoveries, Byzantine windows,
  and targeted link faults at virtual times;
* Byzantine *behaviours* that wrap a correct node and corrupt its outputs
  (wrong reply bodies, re-signed lies, leaked plaintext, silence), used by
  the safety and confidentiality tests -- and the fuzzing harness
  (:mod:`repro.fuzz`) -- to show that the protocol masks them.
"""

from .injector import FaultEvent, FaultInjector, FaultPlan
from .byzantine import (
    ByzantineBehaviour,
    CorruptReplyBehaviour,
    LeakPlaintextBehaviour,
    LyingReplyBehaviour,
    STRATEGIES,
    SilentBehaviour,
    make_behaviour,
    make_byzantine,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ByzantineBehaviour",
    "CorruptReplyBehaviour",
    "LeakPlaintextBehaviour",
    "LyingReplyBehaviour",
    "STRATEGIES",
    "SilentBehaviour",
    "make_behaviour",
    "make_byzantine",
]
