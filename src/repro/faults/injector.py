"""Scheduling of crash faults and recoveries.

A :class:`FaultPlan` is a declarative list of fault events (crash node X at
time T, recover it at time T', partition a link over an interval); the
:class:`FaultInjector` installs them on a running system's scheduler.  The
Andrew-with-failures experiment (Figure 7) crashes one execution server or
one agreement node at the start of the benchmark; the liveness tests use
richer plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.system import SimulatedSystem
from ..sim.process import Process
from ..util.ids import NodeId


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at_ms: float
    kind: str  # "crash", "recover", "partition", "heal"
    node: Optional[NodeId] = None
    link: Optional[Tuple[NodeId, NodeId]] = None


@dataclass
class FaultPlan:
    """A declarative schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def crash(self, node: NodeId, at_ms: float = 0.0) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="crash", node=node))
        return self

    def recover(self, node: NodeId, at_ms: float) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="recover", node=node))
        return self

    def partition(self, a: NodeId, b: NodeId, at_ms: float = 0.0) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="partition", link=(a, b)))
        return self

    def heal(self, a: NodeId, b: NodeId, at_ms: float) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="heal", link=(a, b)))
        return self


class FaultInjector:
    """Installs a :class:`FaultPlan` onto a system's scheduler."""

    def __init__(self, system: SimulatedSystem) -> None:
        self.system = system
        self.applied: List[FaultEvent] = []

    def _process(self, node: NodeId) -> Process:
        return self.system.network.process(node)

    def install(self, plan: FaultPlan) -> None:
        """Schedule every event in ``plan`` relative to the current time."""
        for event in plan.events:
            when = self.system.now + event.at_ms
            self.system.scheduler.call_at(when, lambda e=event: self._apply(e),
                                          label=f"fault:{event.kind}")

    def _apply(self, event: FaultEvent) -> None:
        if event.kind == "crash" and event.node is not None:
            self._process(event.node).crash()
        elif event.kind == "recover" and event.node is not None:
            self._process(event.node).recover()
        elif event.kind == "partition" and event.link is not None:
            self.system.network.faults.partition(*event.link)
        elif event.kind == "heal" and event.link is not None:
            self.system.network.faults.heal(*event.link)
        self.applied.append(event)

    # ------------------------------------------------------------------ #
    # Convenience helpers used by benchmarks.
    # ------------------------------------------------------------------ #

    def crash_now(self, node: NodeId) -> None:
        """Crash ``node`` immediately."""
        self._process(node).crash()
        self.applied.append(FaultEvent(at_ms=self.system.now, kind="crash", node=node))

    def recover_now(self, node: NodeId) -> None:
        """Clear the crash flag on ``node`` immediately."""
        self._process(node).recover()
        self.applied.append(FaultEvent(at_ms=self.system.now, kind="recover", node=node))
