"""Scheduling of crash faults, recoveries, and Byzantine windows.

A :class:`FaultPlan` is a declarative list of fault events (crash node X at
time T, recover it at time T', partition a link over an interval, make a node
Byzantine for a window, degrade one directed link); the
:class:`FaultInjector` installs them on a running system's scheduler.  The
Andrew-with-failures experiment (Figure 7) crashes one execution server or
one agreement node at the start of the benchmark; the liveness tests and the
fuzzing harness (:mod:`repro.fuzz`) use richer plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.system import SimulatedSystem
from ..net.faults import LinkFault
from ..sim.process import Process
from ..util.ids import NodeId
from .byzantine import ByzantineBehaviour


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at_ms: float
    kind: str  # "crash", "recover", "partition", "heal",
    #          # "byzantine", "byzantine_end", "link_fault", "link_heal"
    node: Optional[NodeId] = None
    link: Optional[Tuple[NodeId, NodeId]] = None
    behaviour: Optional[ByzantineBehaviour] = None
    fault: Optional[LinkFault] = None


@dataclass
class FaultPlan:
    """A declarative schedule of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def crash(self, node: NodeId, at_ms: float = 0.0) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="crash", node=node))
        return self

    def recover(self, node: NodeId, at_ms: float) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="recover", node=node))
        return self

    def partition(self, a: NodeId, b: NodeId, at_ms: float = 0.0) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="partition", link=(a, b)))
        return self

    def heal(self, a: NodeId, b: NodeId, at_ms: float) -> "FaultPlan":
        self.events.append(FaultEvent(at_ms=at_ms, kind="heal", link=(a, b)))
        return self

    def byzantine(self, behaviour: ByzantineBehaviour, at_ms: float = 0.0,
                  until_ms: Optional[float] = None) -> "FaultPlan":
        """Install ``behaviour`` at ``at_ms``; heal it again at ``until_ms``.

        Time-bounded malice: the node follows the protocol correctly before
        and after the window, so a schedule can probe exactly the interval
        where an attack races a handoff, a vote, or a view change.
        """
        self.events.append(FaultEvent(at_ms=at_ms, kind="byzantine",
                                      node=behaviour.node, behaviour=behaviour))
        if until_ms is not None:
            self.events.append(FaultEvent(at_ms=until_ms, kind="byzantine_end",
                                          node=behaviour.node,
                                          behaviour=behaviour))
        return self

    def link_fault(self, src: NodeId, dst: NodeId, fault: LinkFault,
                   at_ms: float = 0.0,
                   until_ms: Optional[float] = None) -> "FaultPlan":
        """Degrade the directed ``src -> dst`` link over a window."""
        self.events.append(FaultEvent(at_ms=at_ms, kind="link_fault",
                                      link=(src, dst), fault=fault))
        if until_ms is not None:
            self.events.append(FaultEvent(at_ms=until_ms, kind="link_heal",
                                          link=(src, dst)))
        return self


class FaultInjector:
    """Installs a :class:`FaultPlan` onto a system's scheduler."""

    def __init__(self, system: SimulatedSystem) -> None:
        self.system = system
        self.applied: List[FaultEvent] = []
        #: behaviours currently installed (for end-of-run healing)
        self.active_behaviours: List[ByzantineBehaviour] = []

    def _process(self, node: NodeId) -> Process:
        return self.system.network.process(node)

    def install(self, plan: FaultPlan) -> None:
        """Schedule every event in ``plan`` relative to the current time."""
        for event in plan.events:
            when = self.system.now + event.at_ms
            self.system.scheduler.call_at(when, lambda e=event: self._apply(e),
                                          label=f"fault:{event.kind}")

    def _apply(self, event: FaultEvent) -> None:
        if event.kind == "crash" and event.node is not None:
            self._process(event.node).crash()
        elif event.kind == "recover" and event.node is not None:
            self._process(event.node).recover()
        elif event.kind == "partition" and event.link is not None:
            self.system.network.faults.partition(*event.link)
        elif event.kind == "heal" and event.link is not None:
            self.system.network.faults.heal(*event.link)
        elif event.kind == "byzantine" and event.behaviour is not None:
            event.behaviour.install(self.system)
            self.active_behaviours.append(event.behaviour)
        elif event.kind == "byzantine_end" and event.behaviour is not None:
            event.behaviour.uninstall(self.system)
            if event.behaviour in self.active_behaviours:
                self.active_behaviours.remove(event.behaviour)
        elif event.kind == "link_fault" and event.link is not None \
                and event.fault is not None:
            self.system.network.faults.set_link_fault(*event.link, event.fault)
        elif event.kind == "link_heal" and event.link is not None:
            self.system.network.faults.clear_link_fault(*event.link)
        self.applied.append(event)

    def heal_all(self) -> None:
        """Recover every process, heal every partition/link, uninstall every
        behaviour -- quiesce the system so post-run invariants can settle."""
        for process in self.system.server_processes():
            process.recover()
        self.system.network.faults.heal_all()
        self.system.network.faults.clear_link_faults()
        for behaviour in list(self.active_behaviours):
            behaviour.uninstall(self.system)
        self.active_behaviours.clear()

    # ------------------------------------------------------------------ #
    # Convenience helpers used by benchmarks.
    # ------------------------------------------------------------------ #

    def crash_now(self, node: NodeId) -> None:
        """Crash ``node`` immediately."""
        self._process(node).crash()
        self.applied.append(FaultEvent(at_ms=self.system.now, kind="crash", node=node))

    def recover_now(self, node: NodeId) -> None:
        """Clear the crash flag on ``node`` immediately."""
        self._process(node).recover()
        self.applied.append(FaultEvent(at_ms=self.system.now, kind="recover", node=node))
