"""Byzantine behaviours.

A Byzantine node can do anything except break cryptography.  Rather than
re-implementing whole malicious nodes, these behaviours wrap a *correct*
node's outgoing messages (via a network tap) and corrupt them in targeted
ways.  This gives the tests precise control over the attack while keeping the
node's internal bookkeeping intact:

* :class:`CorruptReplyBehaviour` -- the node reports wrong results for every
  request it executes (an integrity attack the reply quorum must mask);
* :class:`LyingReplyBehaviour` -- like :class:`CorruptReplyBehaviour`, but
  the node *re-authenticates* the corrupted body with its own genuine keys.
  This is the strongest reply attack the fault model admits: the lie carries
  one valid authenticator, so only the ``g + 1`` quorum rule stands between
  it and the client (the fuzzing harness uses it to prove a weakened quorum
  check is exploitable);
* :class:`LeakPlaintextBehaviour` -- the node strips the encryption from reply
  bodies it sends (a confidentiality attack the privacy firewall must stop --
  and will, because a tampered body no longer matches the ``g + 1`` quorum /
  threshold signature and is filtered);
* :class:`SilentBehaviour` -- the node stops sending anything (a crash-like
  omission fault that exercises retransmission and quorum margins).

Behaviours are *time-boundable*: :meth:`ByzantineBehaviour.uninstall` removes
the tap again, so a fault schedule can make a node malicious for a window of
virtual time and then heal it (see :class:`repro.faults.injector.FaultPlan`).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..config import AuthenticationScheme
from ..core.system import SimulatedSystem
from ..messages.reply import BatchReply, BatchReplyBody, ClientReply, ReplyBody
from ..messages.request import EncryptedBody
from ..net.message import Message
from ..net.network import DROP
from ..statemachine.interface import OperationResult
from ..util.ids import NodeId, Role


class ByzantineBehaviour:
    """Base class: a transformation applied to one node's outgoing messages."""

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self.messages_affected = 0
        self.installed = False

    def install(self, system: SimulatedSystem) -> None:
        """Attach this behaviour to the system's network."""
        if self.installed:
            return
        system.network.add_tap(self._tap)
        self.installed = True

    def uninstall(self, system: SimulatedSystem) -> None:
        """Detach this behaviour; the node behaves correctly again."""
        if not self.installed:
            return
        system.network.remove_tap(self._tap)
        self.installed = False

    def _tap(self, source: NodeId, destination: NodeId,
             message: Message) -> Optional[Message]:
        if source != self.node:
            return None
        replacement = self.transform(destination, message)
        if replacement is not None:
            self.messages_affected += 1
        return replacement

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        """Return a replacement message, :data:`~repro.net.network.DROP` to
        swallow it, or None to leave it unchanged."""
        raise NotImplementedError


class SilentBehaviour(ByzantineBehaviour):
    """The node's messages never reach the network (omission fault).

    Implemented as a drop-everything tap rather than a crash so that it can
    be *time-bounded*: uninstalling the tap heals the node without having
    touched its internal state, exactly like a transient network-interface
    failure.
    """

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        return DROP


class CorruptReplyBehaviour(ByzantineBehaviour):
    """Replace the results inside every reply this node sends.

    The original certificate is kept, so the corruption is *detectable*:
    no correct authenticator covers the tampered body and the reply
    contributes zero valid signers at the client (see
    :class:`LyingReplyBehaviour` for the re-signing variant).
    """

    def __init__(self, node: NodeId, corrupt_value: object = "CORRUPTED") -> None:
        super().__init__(node)
        self.corrupt_value = corrupt_value

    def _corrupt_body(self, body: BatchReplyBody) -> BatchReplyBody:
        corrupted = tuple(
            ReplyBody(view=reply.view, seq=reply.seq, timestamp=reply.timestamp,
                      client=reply.client,
                      result=OperationResult(value=self.corrupt_value, size=16))
            for reply in body.replies
        )
        return BatchReplyBody(view=body.view, seq=body.seq, replies=corrupted,
                              shard=body.shard, epoch=body.epoch)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if isinstance(message, BatchReply):
            body = self._corrupt_body(message.body)
            return BatchReply(seq=message.seq, body=body,
                              certificate=message.certificate, sender=message.sender)
        if isinstance(message, ClientReply):
            body = self._corrupt_body(message.body)
            reply = body.reply_for(message.reply.client) or message.reply
            return ClientReply(reply=reply, body=body, certificate=message.certificate)
        return None


class LyingReplyBehaviour(CorruptReplyBehaviour):
    """Corrupt reply bodies *and* re-sign them with the node's own keys.

    A Byzantine node may not break cryptography, but it may freely sign
    whatever it likes with the keys it legitimately holds.  The resulting
    reply carries exactly one valid authenticator -- the liar's -- so a
    correct ``g + 1`` reply quorum masks it (at most ``g`` liars can never
    outvote ``g + 1`` matching correct replies), while any implementation
    that accepts fewer than ``g + 1`` matching authenticators is exposed.
    Only MAC-vector deployments re-sign (threshold shares cannot be forged
    for a tampered body by construction).
    """

    def __init__(self, node: NodeId, corrupt_value: object = "CORRUPTED") -> None:
        super().__init__(node, corrupt_value)
        self._crypto = None

    def install(self, system: SimulatedSystem) -> None:
        self._crypto = system.network.process(self.node).crypto
        super().install(system)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if self._crypto is None:
            return None
        if isinstance(message, ClientReply):
            if message.certificate.scheme is not AuthenticationScheme.MAC:
                return None
            body = self._corrupt_body(message.body)
            reply = body.reply_for(message.reply.client) or message.reply
            certificate = self._crypto.new_certificate(
                body, AuthenticationScheme.MAC, [destination])
            return ClientReply(reply=reply, body=body, certificate=certificate)
        if isinstance(message, BatchReply):
            if message.certificate.scheme is not AuthenticationScheme.MAC:
                return None
            body = self._corrupt_body(message.body)
            certificate = self._crypto.new_certificate(
                body, AuthenticationScheme.MAC, [destination])
            return BatchReply(seq=message.seq, body=body,
                              certificate=certificate, sender=message.sender)
        return None


class LeakPlaintextBehaviour(ByzantineBehaviour):
    """Strip encryption from reply bodies (attempted confidentiality leak)."""

    def _expose(self, body: BatchReplyBody) -> BatchReplyBody:
        exposed = []
        for reply in body.replies:
            result = reply.result
            if isinstance(result, EncryptedBody):
                result = result.open(Role.EXECUTION)
            exposed.append(ReplyBody(view=reply.view, seq=reply.seq,
                                     timestamp=reply.timestamp, client=reply.client,
                                     result=result))
        return BatchReplyBody(view=body.view, seq=body.seq, replies=tuple(exposed),
                              shard=body.shard, epoch=body.epoch)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if isinstance(message, BatchReply):
            return BatchReply(seq=message.seq, body=self._expose(message.body),
                              certificate=message.certificate, sender=message.sender)
        return None


#: first-class strategy names, so fault schedules can reference behaviours
#: declaratively (the fuzzing genome serialises the name, not the object)
STRATEGIES: Dict[str, Type[ByzantineBehaviour]] = {
    "silent": SilentBehaviour,
    "corrupt_reply": CorruptReplyBehaviour,
    "lying_reply": LyingReplyBehaviour,
    "leak_plaintext": LeakPlaintextBehaviour,
}


def make_behaviour(strategy: str, node: NodeId) -> ByzantineBehaviour:
    """Instantiate the named Byzantine strategy for ``node``."""
    try:
        return STRATEGIES[strategy](node)
    except KeyError:
        raise ValueError(f"unknown Byzantine strategy {strategy!r} "
                         f"(known: {sorted(STRATEGIES)})") from None


def make_byzantine(system: SimulatedSystem, behaviour: ByzantineBehaviour) -> ByzantineBehaviour:
    """Install ``behaviour`` on ``system`` and return it (for assertions)."""
    behaviour.install(system)
    return behaviour
