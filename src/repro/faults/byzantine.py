"""Byzantine behaviours.

A Byzantine node can do anything except break cryptography.  Rather than
re-implementing whole malicious nodes, these behaviours wrap a *correct*
node's outgoing messages (via a network tap) and corrupt them in targeted
ways.  This gives the tests precise control over the attack while keeping the
node's internal bookkeeping intact:

* :class:`CorruptReplyBehaviour` -- the node reports wrong results for every
  request it executes (an integrity attack the reply quorum must mask);
* :class:`LeakPlaintextBehaviour` -- the node strips the encryption from reply
  bodies it sends (a confidentiality attack the privacy firewall must stop --
  and will, because a tampered body no longer matches the ``g + 1`` quorum /
  threshold signature and is filtered);
* :class:`SilentBehaviour` -- the node stops sending anything (a crash-like
  omission fault that exercises retransmission and quorum margins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.system import SimulatedSystem
from ..messages.reply import BatchReply, BatchReplyBody, ClientReply, ReplyBody
from ..messages.request import EncryptedBody
from ..net.message import Message
from ..statemachine.interface import OperationResult
from ..util.ids import NodeId, Role


class ByzantineBehaviour:
    """Base class: a transformation applied to one node's outgoing messages."""

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self.messages_affected = 0

    def install(self, system: SimulatedSystem) -> None:
        """Attach this behaviour to the system's network."""
        system.network.add_tap(self._tap)

    def _tap(self, source: NodeId, destination: NodeId,
             message: Message) -> Optional[Message]:
        if source != self.node:
            return None
        replacement = self.transform(destination, message)
        if replacement is not None:
            self.messages_affected += 1
        return replacement

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        """Return a replacement message, or None to leave it unchanged."""
        raise NotImplementedError


class SilentBehaviour(ByzantineBehaviour):
    """The node's messages never reach the network (omission fault)."""

    class _Dropped(Message):
        def payload_fields(self):
            return {"dropped": True}

        def wire_size(self) -> int:
            return 0

    def install(self, system: SimulatedSystem) -> None:
        # Simplest faithful implementation: crash the process, which silences
        # it without altering its internal state.
        system.network.process(self.node).crash()

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        return None


class CorruptReplyBehaviour(ByzantineBehaviour):
    """Replace the results inside every reply this node sends."""

    def __init__(self, node: NodeId, corrupt_value: object = "CORRUPTED") -> None:
        super().__init__(node)
        self.corrupt_value = corrupt_value

    def _corrupt_body(self, body: BatchReplyBody) -> BatchReplyBody:
        corrupted = tuple(
            ReplyBody(view=reply.view, seq=reply.seq, timestamp=reply.timestamp,
                      client=reply.client,
                      result=OperationResult(value=self.corrupt_value, size=16))
            for reply in body.replies
        )
        return BatchReplyBody(view=body.view, seq=body.seq, replies=corrupted,
                              shard=body.shard)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if isinstance(message, BatchReply):
            body = self._corrupt_body(message.body)
            return BatchReply(seq=message.seq, body=body,
                              certificate=message.certificate, sender=message.sender)
        if isinstance(message, ClientReply):
            body = self._corrupt_body(message.body)
            reply = body.reply_for(message.reply.client) or message.reply
            return ClientReply(reply=reply, body=body, certificate=message.certificate)
        return None


class LeakPlaintextBehaviour(ByzantineBehaviour):
    """Strip encryption from reply bodies (attempted confidentiality leak)."""

    def _expose(self, body: BatchReplyBody) -> BatchReplyBody:
        exposed = []
        for reply in body.replies:
            result = reply.result
            if isinstance(result, EncryptedBody):
                result = result.open(Role.EXECUTION)
            exposed.append(ReplyBody(view=reply.view, seq=reply.seq,
                                     timestamp=reply.timestamp, client=reply.client,
                                     result=result))
        return BatchReplyBody(view=body.view, seq=body.seq, replies=tuple(exposed),
                              shard=body.shard)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if isinstance(message, BatchReply):
            return BatchReply(seq=message.seq, body=self._expose(message.body),
                              certificate=message.certificate, sender=message.sender)
        return None


def make_byzantine(system: SimulatedSystem, behaviour: ByzantineBehaviour) -> ByzantineBehaviour:
    """Install ``behaviour`` on ``system`` and return it (for assertions)."""
    behaviour.install(system)
    return behaviour
