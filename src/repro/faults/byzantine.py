"""Byzantine behaviours.

A Byzantine node can do anything except break cryptography.  Rather than
re-implementing whole malicious nodes, these behaviours wrap a *correct*
node's outgoing messages (via a network tap) and corrupt them in targeted
ways.  This gives the tests precise control over the attack while keeping the
node's internal bookkeeping intact:

* :class:`CorruptReplyBehaviour` -- the node reports wrong results for every
  request it executes (an integrity attack the reply quorum must mask);
* :class:`LyingReplyBehaviour` -- like :class:`CorruptReplyBehaviour`, but
  the node *re-authenticates* the corrupted body with its own genuine keys.
  This is the strongest reply attack the fault model admits: the lie carries
  one valid authenticator, so only the ``g + 1`` quorum rule stands between
  it and the client (the fuzzing harness uses it to prove a weakened quorum
  check is exploitable);
* :class:`LeakPlaintextBehaviour` -- the node strips the encryption from reply
  bodies it sends (a confidentiality attack the privacy firewall must stop --
  and will, because a tampered body no longer matches the ``g + 1`` quorum /
  threshold signature and is filtered);
* :class:`SilentBehaviour` -- the node stops sending anything (a crash-like
  omission fault that exercises retransmission and quorum margins).

The *ordering-plane* attacks target a Byzantine **primary** -- the three
classic ways a leader can hurt a PBFT-style protocol without forging anyone
else's credentials:

* :class:`EquivocatingPrimaryBehaviour` -- proposes *conflicting* batches at
  the same ``(view, seq)`` to disjoint backup subsets (a safety attack the
  ``2f + 1`` commit quorum must mask: no two conflicting batches can both
  gather quorums, and the equivocation evidence triggers a view change);
* :class:`CensoringPrimaryBehaviour` -- silently strips targeted clients'
  requests out of every batch it proposes (a targeted liveness attack the
  censorship-resistant request path must defeat: backups' per-request
  deadlines escalate to a view change and the next primary orders the
  starved requests);
* :class:`SlowPrimaryBehaviour` -- delays every ordering message to just
  under the view-change timeout (the classic *performance* attack: never
  slow enough to be deposed by the timer alone, which is why primary
  selection skips recently-deposed leaders).

Behaviours are *time-boundable*: :meth:`ByzantineBehaviour.uninstall` removes
the tap again, so a fault schedule can make a node malicious for a window of
virtual time and then heal it (see :class:`repro.faults.injector.FaultPlan`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..config import AuthenticationScheme
from ..core.system import SimulatedSystem
from ..messages.agreement import PrePrepare
from ..messages.reply import BatchReply, BatchReplyBody, ClientReply, ReplyBody
from ..messages.request import EncryptedBody
from ..net.message import Message
from ..net.network import DROP
from ..statemachine.interface import OperationResult
from ..util.ids import NodeId, Role


class ByzantineBehaviour:
    """Base class: a transformation applied to one node's outgoing messages."""

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self.messages_affected = 0
        self.installed = False

    def install(self, system: SimulatedSystem) -> None:
        """Attach this behaviour to the system's network."""
        if self.installed:
            return
        system.network.add_tap(self._tap)
        self.installed = True

    def uninstall(self, system: SimulatedSystem) -> None:
        """Detach this behaviour; the node behaves correctly again."""
        if not self.installed:
            return
        system.network.remove_tap(self._tap)
        self.installed = False

    def _tap(self, source: NodeId, destination: NodeId,
             message: Message) -> Optional[Message]:
        if source != self.node:
            return None
        replacement = self.transform(destination, message)
        if replacement is not None:
            self.messages_affected += 1
        return replacement

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        """Return a replacement message, :data:`~repro.net.network.DROP` to
        swallow it, or None to leave it unchanged."""
        raise NotImplementedError


class SilentBehaviour(ByzantineBehaviour):
    """The node's messages never reach the network (omission fault).

    Implemented as a drop-everything tap rather than a crash so that it can
    be *time-bounded*: uninstalling the tap heals the node without having
    touched its internal state, exactly like a transient network-interface
    failure.
    """

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        return DROP


class CorruptReplyBehaviour(ByzantineBehaviour):
    """Replace the results inside every reply this node sends.

    The original certificate is kept, so the corruption is *detectable*:
    no correct authenticator covers the tampered body and the reply
    contributes zero valid signers at the client (see
    :class:`LyingReplyBehaviour` for the re-signing variant).
    """

    def __init__(self, node: NodeId, corrupt_value: object = "CORRUPTED") -> None:
        super().__init__(node)
        self.corrupt_value = corrupt_value

    def _corrupt_body(self, body: BatchReplyBody) -> BatchReplyBody:
        corrupted = tuple(
            ReplyBody(view=reply.view, seq=reply.seq, timestamp=reply.timestamp,
                      client=reply.client,
                      result=OperationResult(value=self.corrupt_value, size=16))
            for reply in body.replies
        )
        return BatchReplyBody(view=body.view, seq=body.seq, replies=corrupted,
                              shard=body.shard, epoch=body.epoch)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if isinstance(message, BatchReply):
            body = self._corrupt_body(message.body)
            return BatchReply(seq=message.seq, body=body,
                              certificate=message.certificate, sender=message.sender)
        if isinstance(message, ClientReply):
            body = self._corrupt_body(message.body)
            reply = body.reply_for(message.reply.client) or message.reply
            return ClientReply(reply=reply, body=body, certificate=message.certificate)
        return None


class LyingReplyBehaviour(CorruptReplyBehaviour):
    """Corrupt reply bodies *and* re-sign them with the node's own keys.

    A Byzantine node may not break cryptography, but it may freely sign
    whatever it likes with the keys it legitimately holds.  The resulting
    reply carries exactly one valid authenticator -- the liar's -- so a
    correct ``g + 1`` reply quorum masks it (at most ``g`` liars can never
    outvote ``g + 1`` matching correct replies), while any implementation
    that accepts fewer than ``g + 1`` matching authenticators is exposed.
    Only MAC-vector deployments re-sign (threshold shares cannot be forged
    for a tampered body by construction).
    """

    def __init__(self, node: NodeId, corrupt_value: object = "CORRUPTED") -> None:
        super().__init__(node, corrupt_value)
        self._crypto = None

    def install(self, system: SimulatedSystem) -> None:
        self._crypto = system.network.process(self.node).crypto
        super().install(system)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if self._crypto is None:
            return None
        if isinstance(message, ClientReply):
            if message.certificate.scheme is not AuthenticationScheme.MAC:
                return None
            body = self._corrupt_body(message.body)
            reply = body.reply_for(message.reply.client) or message.reply
            certificate = self._crypto.new_certificate(
                body, AuthenticationScheme.MAC, [destination])
            return ClientReply(reply=reply, body=body, certificate=certificate)
        if isinstance(message, BatchReply):
            if message.certificate.scheme is not AuthenticationScheme.MAC:
                return None
            body = self._corrupt_body(message.body)
            certificate = self._crypto.new_certificate(
                body, AuthenticationScheme.MAC, [destination])
            return BatchReply(seq=message.seq, body=body,
                              certificate=certificate, sender=message.sender)
        return None


class LeakPlaintextBehaviour(ByzantineBehaviour):
    """Strip encryption from reply bodies (attempted confidentiality leak)."""

    def _expose(self, body: BatchReplyBody) -> BatchReplyBody:
        exposed = []
        for reply in body.replies:
            result = reply.result
            if isinstance(result, EncryptedBody):
                result = result.open(Role.EXECUTION)
            exposed.append(ReplyBody(view=reply.view, seq=reply.seq,
                                     timestamp=reply.timestamp, client=reply.client,
                                     result=result))
        return BatchReplyBody(view=body.view, seq=body.seq, replies=tuple(exposed),
                              shard=body.shard, epoch=body.epoch)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if isinstance(message, BatchReply):
            return BatchReply(seq=message.seq, body=self._expose(message.body),
                              certificate=message.certificate, sender=message.sender)
        return None


class EquivocatingPrimaryBehaviour(ByzantineBehaviour):
    """Propose conflicting batches at the same ``(view, seq)``.

    Half of the backups (by position in the agreement roster) receive the
    primary's genuine PRE-PREPARE; the other half receive a *forged* variant
    -- same view and sequence number, different batch, digest recomputed
    with the primary's own (legitimately held) crypto.  Neither variant can
    gather a ``2f + 1`` commit quorum while the split persists, and any
    backup that sees both digests for one slot has proof of equivocation
    and votes for a view change.  Safety must hold throughout: conflicting
    values never commit (the fuzz oracles and the failover benchmark check
    exactly this).
    """

    def __init__(self, node: NodeId) -> None:
        super().__init__(node)
        self._crypto = None
        self._agreement_ids: List[NodeId] = []
        #: forged variant per slot, so every victim of one slot sees the
        #: *same* lie (a per-destination lie would just be noise)
        self._forged: Dict[Tuple[int, int], Optional[PrePrepare]] = {}
        #: a request certificate from an earlier batch, used to fabricate a
        #: conflicting single-request batch
        self._seen_cert = None

    def install(self, system: SimulatedSystem) -> None:
        self._crypto = system.network.process(self.node).crypto
        self._agreement_ids = list(system.agreement_ids)
        super().install(system)

    def _batch_digest(self, requests) -> bytes:
        return self._crypto.digest({
            "batch": [self._crypto.payload_digest(cert.payload)
                      for cert in requests],
        })

    def _forge(self, message: PrePrepare) -> Optional[PrePrepare]:
        key = (message.view, message.seq)
        if key not in self._forged:
            requests = None
            if len(message.requests) > 1:
                requests = tuple(reversed(message.requests))
            elif (self._seen_cert is not None
                  and self._seen_cert.payload is not message.requests[0].payload):
                requests = (self._seen_cert,)
            if requests is None:
                self._forged[key] = None
            else:
                self._forged[key] = PrePrepare(
                    view=message.view, seq=message.seq,
                    batch_digest=self._batch_digest(requests),
                    requests=requests, nondet=message.nondet,
                    primary=message.primary)
        return self._forged[key]

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if not isinstance(message, PrePrepare) or self._crypto is None:
            return None
        if destination not in self._agreement_ids:
            return None
        forged = None
        if self._agreement_ids.index(destination) % 2 == 1:
            forged = self._forge(message)
        if message.requests:
            self._seen_cert = message.requests[0]
        return forged


class CensoringPrimaryBehaviour(ByzantineBehaviour):
    """Never order the targeted clients' requests.

    The primary strips every targeted request certificate out of the batches
    it proposes (recomputing the digest with its own crypto, so the batch is
    otherwise well-formed) and drops the PRE-PREPARE entirely when nothing
    is left.  Untargeted traffic flows normally -- the attack is invisible
    to aggregate throughput, which is precisely why the defence needs
    *per-request* deadlines at the backups rather than a global progress
    check.  Config operations (no ``client`` field) are never censored.
    """

    def __init__(self, node: NodeId,
                 targets: Optional[Sequence[NodeId]] = None) -> None:
        super().__init__(node)
        self.targets = tuple(targets) if targets is not None else None
        self._crypto = None

    def install(self, system: SimulatedSystem) -> None:
        self._crypto = system.network.process(self.node).crypto
        if self.targets is None:
            # Default victim: the first client -- a single starved client is
            # the sharpest liveness probe (aggregate progress stays healthy).
            self.targets = tuple(system.client_ids[:1])
        super().install(system)

    def _batch_digest(self, requests) -> bytes:
        return self._crypto.digest({
            "batch": [self._crypto.payload_digest(cert.payload)
                      for cert in requests],
        })

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if not isinstance(message, PrePrepare) or self._crypto is None:
            return None
        kept = tuple(
            cert for cert in message.requests
            if getattr(cert.payload, "client", None) not in self.targets
        )
        if len(kept) == len(message.requests):
            return None
        if not kept:
            return DROP
        return PrePrepare(view=message.view, seq=message.seq,
                          batch_digest=self._batch_digest(kept),
                          requests=kept, nondet=message.nondet,
                          primary=message.primary)


class SlowPrimaryBehaviour(ByzantineBehaviour):
    """Delay every PRE-PREPARE to just under the view-change timeout.

    The classic performance attack: the primary stays *just* responsive
    enough that no backup's timer ever fires, yet throughput collapses to
    one batch per almost-timeout.  Taps cannot delay a message in place, so
    the behaviour swallows the PRE-PREPARE and re-injects it through the
    scheduler after ``delay_fraction x view_change_ms``; the re-injected
    copy is recognised (by identity) and passed through.  Uninstalling the
    behaviour lets any still-queued re-injections flow harmlessly.
    """

    def __init__(self, node: NodeId, delay_fraction: float = 0.8) -> None:
        super().__init__(node)
        self.delay_fraction = delay_fraction
        self._system: Optional[SimulatedSystem] = None
        self._delay_ms = 0.0
        #: re-injected (message identity, destination) pairs that must pass
        #: through the tap untouched exactly once
        self._released: Dict[Tuple[int, NodeId], int] = {}

    def install(self, system: SimulatedSystem) -> None:
        self._system = system
        self._delay_ms = self.delay_fraction * system.config.timers.view_change_ms
        super().install(system)

    def _release(self, destination: NodeId, message: Message) -> None:
        key = (id(message), destination)
        self._released[key] = self._released.get(key, 0) + 1
        self._system.network.send(self.node, destination, message)

    def transform(self, destination: NodeId, message: Message) -> Optional[Message]:
        if not isinstance(message, PrePrepare) or self._system is None:
            return None
        key = (id(message), destination)
        if self._released.get(key, 0) > 0:
            self._released[key] -= 1
            if not self._released[key]:
                del self._released[key]
            return None
        self._system.scheduler.call_after(
            self._delay_ms, lambda: self._release(destination, message),
            label=f"{self.node.name}:slow-primary-release")
        return DROP


#: first-class strategy names, so fault schedules can reference behaviours
#: declaratively (the fuzzing genome serialises the name, not the object)
STRATEGIES: Dict[str, Type[ByzantineBehaviour]] = {
    "silent": SilentBehaviour,
    "corrupt_reply": CorruptReplyBehaviour,
    "lying_reply": LyingReplyBehaviour,
    "leak_plaintext": LeakPlaintextBehaviour,
    "equivocating_primary": EquivocatingPrimaryBehaviour,
    "censoring_primary": CensoringPrimaryBehaviour,
    "slow_primary": SlowPrimaryBehaviour,
}


def make_behaviour(strategy: str, node: NodeId) -> ByzantineBehaviour:
    """Instantiate the named Byzantine strategy for ``node``."""
    try:
        return STRATEGIES[strategy](node)
    except KeyError:
        raise ValueError(f"unknown Byzantine strategy {strategy!r} "
                         f"(known: {sorted(STRATEGIES)})") from None


def make_byzantine(system: SimulatedSystem, behaviour: ByzantineBehaviour) -> ByzantineBehaviour:
    """Install ``behaviour`` on ``system`` and return it (for assertions)."""
    behaviour.install(system)
    return behaviour
