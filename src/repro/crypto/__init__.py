"""Cryptographic substrate.

Digests and MACs are real (SHA-256 / HMAC-SHA-256).  Public-key signatures
and (k, n) threshold signatures are *simulated*: they are HMACs keyed by
secrets held in a central :class:`Keystore` that only the simulation kernel
can read, which preserves the verification semantics the protocols rely on
(unforgeability by nodes that do not hold the key, deterministic combined
threshold values independent of the share subset) without requiring real
public-key arithmetic.

Every operation is charged to the calling node's virtual clock through the
cost model in :class:`repro.config.CryptoCosts`; those charges are what make
the latency and throughput benchmarks reproduce the paper's shape.
"""

from .digest import digest, digest_hex
from .keys import Keystore, ThresholdGroup
from .certificate import Authenticator, Certificate
from .provider import CryptoProvider

__all__ = [
    "digest",
    "digest_hex",
    "Keystore",
    "ThresholdGroup",
    "Authenticator",
    "Certificate",
    "CryptoProvider",
]
