"""Parallel certificate verification for the real runtime.

The simulator *models* cryptographic cost by charging virtual time; the
asyncio runtime (:mod:`repro.runtime.asyncio_rt`) makes that cost real by
burning CPU, which immediately makes verification the wall-clock bottleneck:
every authenticator on every inbound message is checked inside the single
event-loop thread.  This module moves that work onto a
``concurrent.futures.ProcessPoolExecutor`` sized to the host
(:class:`repro.config.CryptoPoolConfig`) without changing what the protocol
layer observes:

1. Before an inbound message is dispatched, :func:`extract_verify_jobs`
   walks it for :class:`~repro.crypto.certificate.Certificate` objects and
   flattens every authenticator the *receiving* node could check into a
   self-contained job ``(secret, data, token, burn_ms)`` -- the same HMAC
   comparison :class:`~repro.crypto.provider.CryptoProvider` would perform,
   plus the real-time cost the provider would have charged for it.
2. The jobs run in worker processes (:func:`verify_jobs`; workers are
   stateless -- each job carries its key material, so nothing but bytes
   crosses the process boundary).
3. Only the facts that verified **successfully** are recorded in the
   receiving node's :class:`~repro.crypto.cache.VerifiedCertificateCache`,
   under exactly the keys the provider uses.  The node's own in-handler
   verification then hits the cache and charges nothing.

This preserves the cache's safety argument unchanged: failures are never
cached (a forged authenticator is re-checked -- and rejected -- inline by
the destination node), caches stay per-node, and a warmed fact is precisely
a verification that node has already paid for, merely paid on another core.

When the pool is disabled the runtime calls :func:`verify_jobs` in-process:
fallback-to-inline is the same code path minus the executor.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..config import AuthenticationScheme, CryptoCosts, CryptoPoolConfig
from ..errors import CryptoError, UnknownKeyError
from ..net.message import Message
from ..util.ids import NodeId
from ..util.wirecache import WIRE_CACHE
from .certificate import Certificate
from .digest import digest
from .keys import Keystore

#: one verification: HMAC(secret, data) must equal token; ``burn_ms`` is the
#: emulated real-time cost the worker burns before answering (0 burns nothing)
VerifyJob = Tuple[bytes, bytes, bytes, float]

#: the cache key the fact is recorded under on success (provider-compatible)
CacheKey = Tuple


def spin(milliseconds: float) -> None:
    """Burn ``milliseconds`` of real CPU (the runtime's cost emulation).

    A busy-wait on the monotonic clock rather than ``time.sleep`` because a
    sleeping worker would overlap with every other worker for free; the
    point of the emulation is to model operations that *occupy* a core.
    """
    if milliseconds <= 0:
        return
    import time

    deadline = time.perf_counter() + milliseconds / 1000.0
    while time.perf_counter() < deadline:
        pass


def verify_jobs(jobs: Sequence[VerifyJob]) -> List[bool]:
    """Run a batch of verification jobs; the pool's worker entry point.

    Also the inline fallback: a disabled pool calls this directly in the
    event-loop process, so enabling the pool changes *where* the HMACs are
    computed but never *what* is computed.
    """
    results: List[bool] = []
    for secret, data, token, burn_ms in jobs:
        spin(burn_ms)
        expected = hmac.new(secret, data, hashlib.sha256).digest()
        results.append(hmac.compare_digest(expected, token))
    return results


def _payload_digest(payload: Any) -> bytes:
    """The digest a :class:`CryptoProvider` would compute for ``payload``.

    Uses the same wire-cache memo (protocol messages are immutable once
    sent) and the same canonical encoding, so the cache keys built from it
    are byte-identical to the ones the destination node will look up.
    Charges nothing: the node still pays its own digest cost inline.
    """
    entry = WIRE_CACHE.entry_for(payload) if isinstance(payload, Message) else None
    if entry is not None:
        if entry.digest is None:
            entry.materialise()
        return entry.digest
    return digest(payload.to_wire() if hasattr(payload, "to_wire") else payload)


def iter_certificates(obj: Any, _depth: int = 0) -> Iterator[Certificate]:
    """Yield every :class:`Certificate` reachable from a message object.

    Walks dataclass fields, sequences, and mappings (certificates nest:
    an ordered batch carries request certificates inside its payload).
    Depth-bounded as a defence against adversarially self-referential
    payloads -- anything deeper than real protocol messages is skipped,
    and skipped certificates are simply verified inline by the node.
    """
    if _depth > 8:
        return
    if isinstance(obj, Certificate):
        yield obj
        yield from iter_certificates(obj.payload, _depth + 1)
        return
    if isinstance(obj, Message) or is_dataclass(obj):
        for f in fields(obj) if is_dataclass(obj) else []:
            yield from iter_certificates(getattr(obj, f.name, None), _depth + 1)
        if not is_dataclass(obj) and hasattr(obj, "__dict__"):
            for value in vars(obj).values():
                yield from iter_certificates(value, _depth + 1)
        return
    if isinstance(obj, (list, tuple)):
        for item in obj:
            yield from iter_certificates(item, _depth + 1)
    elif isinstance(obj, dict):
        for value in obj.values():
            yield from iter_certificates(value, _depth + 1)


def extract_verify_jobs(node: NodeId, keystore: Keystore, costs: CryptoCosts,
                        message: Any, charge_scale: float = 0.0,
                        ) -> Tuple[List[VerifyJob], List[CacheKey]]:
    """Flatten every authenticator ``node`` could verify on ``message``.

    Returns parallel lists: ``jobs[i]`` proves (or refutes) the fact that
    would be cached under ``keys[i]``.  Authenticators the node cannot
    check -- MAC vectors with no entry for it, signers with no registered
    key, shares from non-members -- produce no job; the node's inline
    verification rejects those itself, as it always did.  ``burn_ms`` is
    the provider's virtual charge for the operation scaled by
    ``charge_scale``, so the pool burns exactly the cost the node no
    longer pays inline.
    """
    jobs: List[VerifyJob] = []
    keys: List[CacheKey] = []
    seen_certs = set()
    for cert in iter_certificates(message):
        if id(cert) in seen_certs:
            continue
        seen_certs.add(id(cert))
        pd = _payload_digest(cert.payload)
        if cert.scheme is AuthenticationScheme.MAC:
            for auth in cert.authenticators.values():
                if not auth.covers(pd):
                    continue
                token = (auth.token or {}).get(node.name)
                if token is None:
                    continue
                secret = keystore.pair_secret(auth.signer, node)
                jobs.append((secret, pd, token,
                             costs.mac_ms * charge_scale))
                keys.append(("mac", auth.signer, pd))
        elif cert.scheme is AuthenticationScheme.SIGNATURE:
            for auth in cert.authenticators.values():
                if not auth.covers(pd) or not isinstance(auth.token, bytes):
                    continue
                try:
                    key = keystore.private_key(auth.signer)
                except (CryptoError, UnknownKeyError):
                    continue
                jobs.append((key, b"sig:" + pd, auth.token,
                             costs.signature_verify_ms * charge_scale))
                keys.append(("sig", auth.signer, pd))
        elif cert.scheme is AuthenticationScheme.THRESHOLD:
            if cert.threshold_group is None or not keystore.has_threshold_group(
                    cert.threshold_group):
                continue
            group = keystore.threshold_group(cert.threshold_group)
            for auth in cert.authenticators.values():
                if (not auth.covers(pd) or auth.signer not in group.members
                        or not isinstance(auth.token, bytes)):
                    continue
                jobs.append((group.share_key(auth.signer), b"share:" + pd,
                             auth.token, costs.mac_ms * charge_scale))
                keys.append(("share", cert.threshold_group, auth.signer, pd))
            if cert.threshold_signature is not None:
                sig = bytes(cert.threshold_signature)
                jobs.append((group.group_key, b"combined:" + pd, sig,
                             costs.threshold_verify_ms * charge_scale))
                keys.append(("tsig", cert.threshold_group, pd, sig))
    return jobs, keys


@dataclass
class CryptoPoolStats:
    """Counters for the pool's share of the verification work."""

    batches: int = 0
    jobs: int = 0
    verified: int = 0
    rejected: int = 0
    inline_batches: int = 0

    def snapshot(self) -> dict:
        return {"batches": self.batches, "jobs": self.jobs,
                "verified": self.verified, "rejected": self.rejected,
                "inline_batches": self.inline_batches}


class CryptoPool:
    """A host-sized process pool for batch authenticator verification.

    Lazy: the executor (and its worker processes) is created on first use,
    so building a config with a disabled pool costs nothing.  ``close()``
    shuts the workers down; the owning runtime calls it from its own
    ``close()``.
    """

    def __init__(self, config: Optional[CryptoPoolConfig] = None) -> None:
        self.config = config or CryptoPoolConfig()
        self.stats = CryptoPoolStats()
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def workers(self) -> int:
        return self.config.workers or os.cpu_count() or 1

    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def run_inline(self, jobs: Sequence[VerifyJob]) -> List[bool]:
        """The fallback path: verify in the calling process."""
        self.stats.inline_batches += 1
        return self._count(verify_jobs(jobs))

    async def run(self, loop, jobs: Sequence[VerifyJob]) -> List[bool]:
        """Verify a batch, on the pool when it pays, inline otherwise."""
        if not self.enabled or len(jobs) < self.config.min_batch:
            return self.run_inline(jobs)
        self.stats.batches += 1
        results = await loop.run_in_executor(self.executor(), verify_jobs,
                                             list(jobs))
        return self._count(results)

    def _count(self, results: List[bool]) -> List[bool]:
        self.stats.jobs += len(results)
        self.stats.verified += sum(1 for ok in results if ok)
        self.stats.rejected += sum(1 for ok in results if not ok)
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
