"""Authentication certificates.

The paper's protocols exchange *authentication certificates*
``<X>_{S,D,k}``: a statement ``X`` together with evidence that at least ``k``
distinct nodes from the source set ``S`` vouch for ``X``, verifiable by any
node in the destination set ``D``.  Three implementations are supported --
MAC authenticator vectors, public-key signatures, and threshold signatures --
selected by :class:`repro.config.AuthenticationScheme`.

A :class:`Certificate` is the container; creating and verifying the
authenticators inside it is the job of
:class:`repro.crypto.provider.CryptoProvider`, which holds the keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from ..config import AuthenticationScheme
from ..errors import CertificateError
from ..util.ids import NodeId


@dataclass(frozen=True, slots=True)
class Authenticator:
    """One node's evidence that it vouches for a payload digest.

    ``token`` is scheme-dependent:

    * MAC: a mapping from destination node name to the MAC computed with the
      pairwise secret shared by the signer and that destination;
    * SIGNATURE: the signature bytes, verifiable by anyone;
    * THRESHOLD: this node's signature *share*, combinable into a group
      signature once ``k`` distinct shares are available.
    """

    signer: NodeId
    scheme: AuthenticationScheme
    payload_digest: bytes
    token: Any

    def covers(self, payload_digest: bytes) -> bool:
        """Whether this authenticator was produced over ``payload_digest``."""
        return self.payload_digest == payload_digest

    def to_wire(self) -> Dict[str, Any]:
        """Canonical-encodable representation (used when a certificate is
        embedded inside another authenticated message)."""
        return {
            "signer": self.signer.name,
            "scheme": self.scheme.value,
            "payload_digest": self.payload_digest,
            "token": self.token,
        }


@dataclass
class Certificate:
    """A payload plus the authenticators collected for it.

    The payload may be any canonical-encodable value; protocol code normally
    stores a :class:`~repro.net.message.Message`.  For threshold-signed
    certificates the individual shares are replaced (or complemented) by a
    single ``threshold_signature`` representing the whole group.
    """

    payload: Any
    scheme: AuthenticationScheme
    authenticators: Dict[NodeId, Authenticator] = field(default_factory=dict)
    threshold_group: Optional[str] = None
    threshold_signature: Optional[bytes] = None

    # ------------------------------------------------------------------ #
    # Mutation.
    # ------------------------------------------------------------------ #

    def add(self, authenticator: Authenticator) -> None:
        """Add one node's authenticator (last write wins for a given signer)."""
        if authenticator.scheme is not self.scheme:
            raise CertificateError(
                f"authenticator scheme {authenticator.scheme} does not match "
                f"certificate scheme {self.scheme}"
            )
        self.authenticators[authenticator.signer] = authenticator

    def merge(self, other: "Certificate") -> None:
        """Merge the authenticators of ``other`` (same payload) into this one."""
        for authenticator in other.authenticators.values():
            self.add(authenticator)
        if other.threshold_signature is not None:
            self.threshold_signature = other.threshold_signature
            self.threshold_group = other.threshold_group

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #

    @property
    def signers(self) -> FrozenSet[NodeId]:
        """The distinct nodes that contributed authenticators."""
        return frozenset(self.authenticators)

    def count(self, universe: Optional[Iterable[NodeId]] = None) -> int:
        """Number of distinct signers, optionally restricted to ``universe``."""
        signers = self.signers
        if universe is not None:
            signers = signers & frozenset(universe)
        return len(signers)

    def authenticator_list(self) -> List[Authenticator]:
        """Authenticators in deterministic (signer) order."""
        return [self.authenticators[s] for s in sorted(self.authenticators)]

    def has_threshold_signature(self) -> bool:
        return self.threshold_signature is not None

    def to_wire(self) -> Dict[str, Any]:
        """Canonical-encodable representation of the certificate."""
        payload = self.payload.to_wire() if hasattr(self.payload, "to_wire") else self.payload
        return {
            "payload": payload,
            "scheme": self.scheme.value,
            "authenticators": [a.to_wire() for a in self.authenticator_list()],
            "threshold_group": self.threshold_group,
            "threshold_signature": self.threshold_signature,
        }

    def wire_size(self) -> int:
        """Estimated size of this certificate on the wire."""
        from ..util.encoding import estimate_size

        base = estimate_size(self.to_wire())
        if hasattr(self.payload, "padding_bytes"):
            base += self.payload.padding_bytes
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        signer_names = ",".join(sorted(s.name for s in self.authenticators))
        extra = " +threshold" if self.threshold_signature is not None else ""
        return f"<Certificate {self.scheme.value} signers=[{signer_names}]{extra}>"
