"""Per-node memoisation of successful verifications.

The separated architecture verifies the same authenticators repeatedly: an
agreement node re-checks a reply collector's accumulated authenticators on
every arriving partial, retransmitted request certificates carry bit-identical
MAC vectors, and gap-fetch / retransmission paths re-validate batches whose
certificates were already accepted.  The
:class:`VerifiedCertificateCache` removes that repeated work *per node*:
each :class:`~repro.crypto.provider.CryptoProvider` owns one cache, so no
node ever benefits from another node's verification (a node can only trust
hashes it computed and MACs it checked itself).

**Safety argument.**  Only *successes* are memoised, keyed by the full
SHA-256 payload digest plus the verification parameters:

* a per-authenticator fact ``(scheme, signer, payload_digest[, group])``
  records "``signer`` vouches for ``payload_digest``".  Once that statement
  has been established by one valid authenticator it is true forever, so a
  later authenticator carrying the same ``(signer, digest)`` claim may be
  accepted without re-checking its token: it asserts a fact this node has
  already proven.  An adversary cannot use the cache to make a *new*
  statement -- any forged authenticator for a digest/signer pair that was
  never legitimately verified misses the cache and fails verification
  exactly as it would without the cache.
* a per-certificate fact ``(payload_digest, scheme, signers, required,
  universe)`` records "at least ``required`` of ``signers`` (restricted to
  ``universe``) vouch for ``payload_digest``".
* a combined-threshold fact ``(group, payload_digest, signature)`` includes
  the signature bytes themselves, so a forged group signature can never hit.

Failures are **never cached** -- neither negatively (which would let a
Byzantine sender poison the cache and suppress a later legitimate
certificate for the same statement) nor as a success.  Byzantine and
correct senders therefore see identical cache behaviour.

Virtual-time crypto costs are charged only on misses, which is what makes
the Figure-4 style cost-model benchmarks show the saving; hits are recorded
under a separate ``*_cached`` operation counter so benchmarks and tests can
account for them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Tuple

#: a memoised verification fact (see module docstring for the key shapes)
CacheKey = Tuple[Hashable, ...]


class VerifiedCertificateCache:
    """Bounded LRU set of verification facts proven by one node."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._facts: "OrderedDict[CacheKey, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._facts)

    def seen(self, key: CacheKey) -> bool:
        """Whether ``key`` is a previously proven fact (counts hit/miss)."""
        if key in self._facts:
            self._facts.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def add(self, key: CacheKey) -> None:
        """Record a *successful* verification (failures must never be added)."""
        self._facts[key] = None
        self._facts.move_to_end(key)
        while len(self._facts) > self.capacity:
            self._facts.popitem(last=False)

    def clear(self) -> None:
        self._facts.clear()
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> dict:
        """Hit/miss/occupancy counters for the metrics registry's probes."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self._facts),
            "capacity": self.capacity,
        }
