"""Cryptographic digests.

The paper assumes a collision- and preimage-resistant digest function (SHA-1
in 2003); we use SHA-256.  Digests are computed over the canonical encoding
of protocol values so that all correct nodes derive identical digests from
identical logical messages.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..util.encoding import canonical_encode

DIGEST_SIZE = 32


def digest(value: Any) -> bytes:
    """Return the SHA-256 digest of ``value``'s canonical encoding.

    ``bytes`` values are hashed directly; anything else is first passed
    through :func:`repro.util.encoding.canonical_encode`.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
    else:
        data = canonical_encode(value)
    return hashlib.sha256(data).digest()


def digest_hex(value: Any) -> str:
    """Hex string form of :func:`digest` (for logs and debugging)."""
    return digest(value).hex()


def combine_digests(*digests: bytes) -> bytes:
    """Hash a sequence of digests into one (used for incremental checkpoints)."""
    hasher = hashlib.sha256()
    for item in digests:
        hasher.update(item)
    return hasher.digest()
