"""Per-node cryptographic operations.

A :class:`CryptoProvider` is bound to one node and exposes exactly the
operations the paper's trust model allows that node to perform: hashing,
MACing to known destinations, signing with its own private key, producing its
own threshold share, verifying anything, and combining ``k`` valid shares into
a group signature.  It cannot produce another node's authenticator, which is
how the simulation upholds the "cryptography is not subverted" assumption even
for Byzantine nodes.

Every operation charges its virtual-time cost (from
:class:`repro.config.CryptoCosts`) through the ``charge`` callback -- usually
``Process.charge`` -- and records an operation count for the cost-model
benchmarks (Figure 4).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..config import AuthenticationScheme, CryptoCosts, PerfConfig
from ..errors import CertificateError, CryptoError, VerificationError
from ..net.message import Message
from ..util.ids import NodeId
from ..util.wirecache import WIRE_CACHE
from .cache import VerifiedCertificateCache
from .certificate import Authenticator, Certificate
from .digest import digest
from .keys import Keystore

ChargeFn = Callable[[float], None]
RecordFn = Callable[[str], None]


def _noop_charge(_: float) -> None:
    return None


def _noop_record(_: str) -> None:
    return None


def _hmac(key: bytes, data: bytes) -> bytes:
    return hmac.new(key, data, hashlib.sha256).digest()


class CryptoProvider:
    """Cryptographic operations available to one node."""

    def __init__(self, node: NodeId, keystore: Keystore,
                 costs: Optional[CryptoCosts] = None,
                 charge: Optional[ChargeFn] = None,
                 record: Optional[RecordFn] = None,
                 perf: Optional[PerfConfig] = None) -> None:
        self.node = node
        self.keystore = keystore
        self.costs = costs or CryptoCosts()
        self.perf = perf or PerfConfig()
        #: per-node memo of successful verifications (None when disabled);
        #: never shared between nodes, so no node benefits from another
        #: node's verification work.
        self.cache: Optional[VerifiedCertificateCache] = (
            VerifiedCertificateCache(self.perf.cert_cache_capacity)
            if self.perf.verified_cert_cache else None)
        self._charge = charge or _noop_charge
        self._record = record or _noop_record
        keystore.register_node(node)

    def bind(self, charge: ChargeFn, record: RecordFn) -> None:
        """Attach the cost-accounting callbacks (done when a Process is built)."""
        self._charge = charge
        self._record = record

    # ------------------------------------------------------------------ #
    # Digests.
    # ------------------------------------------------------------------ #

    def digest(self, value: Any, size_hint: Optional[int] = None) -> bytes:
        """Digest ``value``, charging hashing time proportional to its size."""
        data = value if isinstance(value, bytes) else None
        result = digest(value)
        size = size_hint if size_hint is not None else (len(data) if data is not None else 64)
        self._charge(self.costs.digest_ms(size))
        self._record("digest")
        return result

    def payload_digest(self, payload: Any) -> bytes:
        """Digest of a message/payload, charging based on its wire size.

        For protocol messages (immutable once sent) the digest is memoised in
        the process-wide wire cache; with ``perf.digest_memo`` enabled the
        virtual hashing cost is charged only the first time *this node*
        touches the message -- later touches record ``digest_cached`` and
        charge nothing, and other nodes still pay for their own first hash.
        """
        entry = WIRE_CACHE.entry_for(payload) if isinstance(payload, Message) else None
        if entry is not None:
            if entry.digest is None:
                entry.materialise()
            if self.perf.digest_memo:
                if self.node.name in entry.charged:
                    self._record("digest_cached")
                    return entry.digest
                entry.charged.add(self.node.name)
            self._charge(self.costs.digest_ms(entry.size + payload.padding_bytes))
            self._record("digest")
            return entry.digest
        size = payload.wire_size() if hasattr(payload, "wire_size") else None
        return self.digest(payload if not hasattr(payload, "to_wire") else payload.to_wire(),
                           size_hint=size)

    # ------------------------------------------------------------------ #
    # MAC authenticators.
    # ------------------------------------------------------------------ #

    def mac_authenticator(self, payload: Any,
                          destinations: Iterable[NodeId]) -> Authenticator:
        """Produce a MAC-vector authenticator for ``payload`` to ``destinations``."""
        payload_digest = self.payload_digest(payload)
        tokens: Dict[str, bytes] = {}
        for destination in destinations:
            secret = self.keystore.pair_secret(self.node, destination)
            tokens[destination.name] = _hmac(secret, payload_digest)
        self._charge(self.costs.mac_ms)
        self._record("mac_sign")
        return Authenticator(signer=self.node, scheme=AuthenticationScheme.MAC,
                             payload_digest=payload_digest, token=tokens)

    def verify_mac(self, payload: Any, authenticator: Authenticator) -> bool:
        """Verify the MAC entry addressed to this node.

        A cache hit means this node previously proved that the same signer
        vouches for the same payload digest; re-asserting a proven fact is
        accepted without charging (see :mod:`repro.crypto.cache`).
        """
        if authenticator.scheme is not AuthenticationScheme.MAC:
            return False
        payload_digest = self.payload_digest(payload)
        key = ("mac", authenticator.signer, payload_digest)
        if self.cache is not None and self.cache.seen(key):
            self._record("mac_verify_cached")
            return True
        if not authenticator.covers(payload_digest):
            return False
        token = authenticator.token or {}
        entry = token.get(self.node.name)
        if entry is None:
            return False
        secret = self.keystore.pair_secret(authenticator.signer, self.node)
        expected = _hmac(secret, payload_digest)
        self._charge(self.costs.mac_ms)
        self._record("mac_verify")
        ok = hmac.compare_digest(entry, expected)
        if ok and self.cache is not None:
            self.cache.add(key)
        return ok

    # ------------------------------------------------------------------ #
    # Public-key signatures (simulated).
    # ------------------------------------------------------------------ #

    def sign(self, payload: Any) -> Authenticator:
        """Sign ``payload`` with this node's private key."""
        payload_digest = self.payload_digest(payload)
        key = self.keystore.private_key(self.node)
        signature = _hmac(key, b"sig:" + payload_digest)
        self._charge(self.costs.signature_sign_ms)
        self._record("signature_sign")
        return Authenticator(signer=self.node, scheme=AuthenticationScheme.SIGNATURE,
                             payload_digest=payload_digest, token=signature)

    def verify_signature(self, payload: Any, authenticator: Authenticator) -> bool:
        """Verify another node's signature over ``payload``."""
        if authenticator.scheme is not AuthenticationScheme.SIGNATURE:
            return False
        payload_digest = self.payload_digest(payload)
        cache_key = ("sig", authenticator.signer, payload_digest)
        if self.cache is not None and self.cache.seen(cache_key):
            self._record("signature_verify_cached")
            return True
        if not authenticator.covers(payload_digest):
            return False
        try:
            key = self.keystore.private_key(authenticator.signer)
        except CryptoError:
            return False
        expected = _hmac(key, b"sig:" + payload_digest)
        self._charge(self.costs.signature_verify_ms)
        self._record("signature_verify")
        ok = hmac.compare_digest(authenticator.token, expected)
        if ok and self.cache is not None:
            self.cache.add(cache_key)
        return ok

    # ------------------------------------------------------------------ #
    # Threshold signatures (simulated k-of-n).
    # ------------------------------------------------------------------ #

    def threshold_share(self, payload: Any, group_name: str) -> Authenticator:
        """Produce this node's signature share for ``payload`` in ``group_name``."""
        group = self.keystore.threshold_group(group_name)
        share_key = group.share_key(self.node)
        payload_digest = self.payload_digest(payload)
        share = _hmac(share_key, b"share:" + payload_digest)
        self._charge(self.costs.threshold_share_ms)
        self._record("threshold_share")
        return Authenticator(signer=self.node, scheme=AuthenticationScheme.THRESHOLD,
                             payload_digest=payload_digest, token=share)

    def verify_threshold_share(self, payload: Any, authenticator: Authenticator,
                               group_name: str) -> bool:
        """Verify that a share was produced by a group member over ``payload``."""
        if authenticator.scheme is not AuthenticationScheme.THRESHOLD:
            return False
        group = self.keystore.threshold_group(group_name)
        if authenticator.signer not in group.members:
            return False
        payload_digest = self.payload_digest(payload)
        cache_key = ("share", group_name, authenticator.signer, payload_digest)
        if self.cache is not None and self.cache.seen(cache_key):
            self._record("threshold_share_verify_cached")
            return True
        if not authenticator.covers(payload_digest):
            return False
        expected = _hmac(group.share_key(authenticator.signer), b"share:" + payload_digest)
        self._charge(self.costs.mac_ms)
        self._record("threshold_share_verify")
        ok = hmac.compare_digest(authenticator.token, expected)
        if ok and self.cache is not None:
            self.cache.add(cache_key)
        return ok

    def threshold_combine(self, payload: Any, group_name: str,
                          shares: Iterable[Authenticator]) -> bytes:
        """Combine ``k`` valid shares into the group signature.

        Raises :class:`VerificationError` if fewer than the group threshold of
        *distinct, valid* shares are provided.  The combined value is a
        deterministic function of the payload alone -- matching the paper's
        observation that threshold signatures prevent an adversary from
        leaking information through certificate membership sets.
        """
        group = self.keystore.threshold_group(group_name)
        payload_digest = self.payload_digest(payload)
        valid_signers = set()
        for share in shares:
            if self.verify_threshold_share(payload, share, group_name):
                valid_signers.add(share.signer)
        if len(valid_signers) < group.threshold:
            raise VerificationError(
                f"threshold combine needs {group.threshold} valid shares, "
                f"got {len(valid_signers)}"
            )
        self._charge(self.costs.threshold_combine_ms)
        self._record("threshold_combine")
        return _hmac(group.group_key, b"combined:" + payload_digest)

    def verify_threshold_signature(self, payload: Any, signature: bytes,
                                   group_name: str) -> bool:
        """Verify a combined group signature over ``payload``.

        The cache key includes the signature bytes themselves, so a forged
        group signature can never hit a fact proven for the genuine one.
        """
        group = self.keystore.threshold_group(group_name)
        payload_digest = self.payload_digest(payload)
        cache_key = ("tsig", group_name, payload_digest, bytes(signature))
        if self.cache is not None and self.cache.seen(cache_key):
            self._record("threshold_verify_cached")
            return True
        expected = _hmac(group.group_key, b"combined:" + payload_digest)
        self._charge(self.costs.threshold_verify_ms)
        self._record("threshold_verify")
        ok = hmac.compare_digest(signature, expected)
        if ok and self.cache is not None:
            self.cache.add(cache_key)
        return ok

    # ------------------------------------------------------------------ #
    # Certificates.
    # ------------------------------------------------------------------ #

    def authenticate(self, certificate: Certificate,
                     destinations: Iterable[NodeId]) -> Certificate:
        """Add this node's authenticator to ``certificate`` and return it."""
        if certificate.scheme is AuthenticationScheme.MAC:
            certificate.add(self.mac_authenticator(certificate.payload, destinations))
        elif certificate.scheme is AuthenticationScheme.SIGNATURE:
            certificate.add(self.sign(certificate.payload))
        elif certificate.scheme is AuthenticationScheme.THRESHOLD:
            if certificate.threshold_group is None:
                raise CertificateError("threshold certificate has no group name")
            certificate.add(self.threshold_share(certificate.payload,
                                                 certificate.threshold_group))
        else:  # pragma: no cover - exhaustive over the enum
            raise CertificateError(f"unknown scheme {certificate.scheme}")
        return certificate

    def new_certificate(self, payload: Any, scheme: AuthenticationScheme,
                        destinations: Iterable[NodeId],
                        threshold_group: Optional[str] = None) -> Certificate:
        """Create a certificate for ``payload`` carrying this node's authenticator."""
        certificate = Certificate(payload=payload, scheme=scheme,
                                  threshold_group=threshold_group)
        return self.authenticate(certificate, destinations)

    def valid_signers(self, certificate: Certificate,
                      universe: Optional[Iterable[NodeId]] = None) -> List[NodeId]:
        """Return the distinct signers whose authenticators verify at this node."""
        allowed = None if universe is None else frozenset(universe)
        valid: List[NodeId] = []
        for authenticator in certificate.authenticator_list():
            if allowed is not None and authenticator.signer not in allowed:
                continue
            if certificate.scheme is AuthenticationScheme.MAC:
                ok = self.verify_mac(certificate.payload, authenticator)
            elif certificate.scheme is AuthenticationScheme.SIGNATURE:
                ok = self.verify_signature(certificate.payload, authenticator)
            else:
                if certificate.threshold_group is None:
                    ok = False
                else:
                    ok = self.verify_threshold_share(certificate.payload, authenticator,
                                                     certificate.threshold_group)
            if ok:
                valid.append(authenticator.signer)
        return valid

    def verify_certificate(self, certificate: Certificate, required: int,
                           universe: Optional[Iterable[NodeId]] = None) -> bool:
        """Check that the certificate carries ``required`` valid authenticators.

        A threshold certificate with a combined signature verifies directly
        against the group signature regardless of which shares are attached.
        """
        if (certificate.scheme is AuthenticationScheme.THRESHOLD
                and certificate.threshold_signature is not None
                and certificate.threshold_group is not None):
            return self.verify_threshold_signature(
                certificate.payload, certificate.threshold_signature,
                certificate.threshold_group,
            )
        cache_key = None
        if self.cache is not None:
            cache_key = (
                "cert",
                self.payload_digest(certificate.payload),
                certificate.scheme.value,
                frozenset(signer.name for signer in certificate.authenticators),
                required,
                None if universe is None else frozenset(n.name for n in universe),
            )
            if self.cache.seen(cache_key):
                self._record("certificate_cached")
                return True
        ok = len(self.valid_signers(certificate, universe)) >= required
        if ok and cache_key is not None:
            self.cache.add(cache_key)
        return ok

    def require_certificate(self, certificate: Certificate, required: int,
                            universe: Optional[Iterable[NodeId]] = None,
                            description: str = "certificate") -> None:
        """Raise :class:`VerificationError` unless the certificate verifies."""
        if not self.verify_certificate(certificate, required, universe):
            raise VerificationError(
                f"{description} does not carry {required} valid authenticators"
            )
