"""Key management for the simulated cryptographic substrate.

The :class:`Keystore` plays the role of the key-distribution assumptions in
Section 2 of the paper:

* every node has a private key that no other node knows,
* every pair of nodes shares a MAC secret that no third node knows,
* a threshold group of ``n`` members has a split group key of which each
  member holds one share; any ``k`` shares produce the group signature.

The keystore is trusted infrastructure of the *simulation*, not of the
protocol: protocol code only touches it through a per-node
:class:`~repro.crypto.provider.CryptoProvider`, which exposes exactly the
operations the paper's trust model allows that node to perform.  Byzantine
nodes therefore cannot forge other nodes' authenticators, matching the
assumption that cryptography is not subverted.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..errors import CryptoError, UnknownKeyError
from ..util.ids import NodeId


def _derive(master: bytes, *labels: str) -> bytes:
    """Derive a sub-key from ``master`` and a label path."""
    material = master
    for label in labels:
        material = hmac.new(material, label.encode("utf-8"), hashlib.sha256).digest()
    return material


@dataclass(frozen=True)
class ThresholdGroup:
    """Description of a (k, n) threshold-signature group."""

    name: str
    members: FrozenSet[NodeId]
    threshold: int
    group_key: bytes = field(repr=False)

    def share_key(self, member: NodeId) -> bytes:
        """The signing share held by ``member``."""
        if member not in self.members:
            raise UnknownKeyError(f"{member} is not a member of threshold group {self.name}")
        return _derive(self.group_key, "share", member.name)


class Keystore:
    """Central registry of private keys, pairwise secrets, and threshold groups."""

    def __init__(self, master_secret: bytes = b"repro-master-secret") -> None:
        self._master = master_secret
        self._nodes: Dict[NodeId, bytes] = {}
        self._groups: Dict[str, ThresholdGroup] = {}

    # ------------------------------------------------------------------ #
    # Node keys.
    # ------------------------------------------------------------------ #

    def register_node(self, node: NodeId) -> None:
        """Create the private key for ``node`` (idempotent)."""
        if node not in self._nodes:
            self._nodes[node] = _derive(self._master, "node", node.name)

    def is_registered(self, node: NodeId) -> bool:
        return node in self._nodes

    def private_key(self, node: NodeId) -> bytes:
        """Private signing key of ``node`` (simulation-internal)."""
        try:
            return self._nodes[node]
        except KeyError:
            raise UnknownKeyError(f"node {node} has no registered key") from None

    def pair_secret(self, a: NodeId, b: NodeId) -> bytes:
        """Shared MAC secret between ``a`` and ``b`` (order-independent).

        Nodes are registered lazily: asking for a pair secret that involves a
        not-yet-registered peer simply provisions that peer's key material, the
        same way a real deployment distributes shared secrets ahead of time.
        """
        self.register_node(a)
        self.register_node(b)
        first, second = sorted((a, b))
        return _derive(self._master, "pair", first.name, second.name)

    # ------------------------------------------------------------------ #
    # Threshold groups.
    # ------------------------------------------------------------------ #

    def create_threshold_group(self, name: str, members: Iterable[NodeId],
                               threshold: int) -> ThresholdGroup:
        """Create (or return the identical existing) threshold group ``name``."""
        members_set = frozenset(members)
        if threshold < 1 or threshold > len(members_set):
            raise CryptoError(
                f"threshold {threshold} is not in [1, {len(members_set)}] for group {name}"
            )
        for member in members_set:
            self.register_node(member)
        group = ThresholdGroup(
            name=name,
            members=members_set,
            threshold=threshold,
            group_key=_derive(self._master, "group", name),
        )
        existing = self._groups.get(name)
        if existing is not None:
            if existing.members != group.members or existing.threshold != group.threshold:
                raise CryptoError(f"threshold group {name} already exists with different parameters")
            return existing
        self._groups[name] = group
        return group

    def threshold_group(self, name: str) -> ThresholdGroup:
        try:
            return self._groups[name]
        except KeyError:
            raise UnknownKeyError(f"unknown threshold group {name}") from None

    def has_threshold_group(self, name: str) -> bool:
        return name in self._groups
