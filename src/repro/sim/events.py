"""Event queue for the discrete-event simulator.

Events are ordered by (time, sequence) so that events scheduled for the same
virtual instant fire in the order they were scheduled, which keeps the
simulation deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped; this is
    the standard lazy-deletion trick and is how timers are cancelled cheaply.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler will skip it."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` objects keyed by virtual time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at virtual ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError("cannot schedule an event before time zero")
        event = Event(time=time, sequence=next(self._counter),
                      callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
