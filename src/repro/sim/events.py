"""Event queue for the discrete-event simulator.

Events are ordered by (time, sequence) so that events scheduled for the same
virtual instant fire in the order they were scheduled, which keeps the
simulation deterministic for a given seed.

Cancellation uses the standard lazy-deletion trick (cancelled events stay in
the heap and are skipped when popped), but the queue additionally maintains
an O(1) live-event counter and *compacts* the heap whenever cancelled
entries outnumber live ones: long-running simulations cancel one
retransmission timer per answered batch, and without compaction those dead
entries would accumulate and slow every push/pop by a growing log factor.
Compaction preserves the (time, sequence) order keys, so rebuilding the heap
never changes the firing order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError

#: heaps smaller than this are never compacted (the rebuild would cost more
#: than the dead entries ever could)
_COMPACTION_MIN_SIZE = 64


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    ``cancelled`` events stay in the heap but are skipped when popped; the
    owning queue is notified so its live-event counter stays exact and it
    can decide to compact.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: set by the scheduler when the callback runs (used by Timer.active)
    fired: bool = field(compare=False, default=False)
    #: the queue currently holding this event (None once popped)
    queue: Optional["EventQueue"] = field(compare=False, default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler will skip it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._note_cancelled()


class EventQueue:
    """Priority queue of :class:`Event` objects keyed by virtual time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled_in_heap = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events -- O(1)."""
        return self._live

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at virtual ``time`` and return the event handle."""
        if time < 0:
            raise SimulationError("cannot schedule an event before time zero")
        event = Event(time=time, sequence=next(self._counter),
                      callback=callback, label=label, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event.queue = None
            if not event.cancelled:
                self._live -= 1
                return event
            self._cancelled_in_heap -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap).queue = None
            self._cancelled_in_heap -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------ #
    # Lazy-deletion accounting.
    # ------------------------------------------------------------------ #

    @property
    def heap_size(self) -> int:
        """Total heap entries including lazily-cancelled ones (for tests)."""
        return len(self._heap)

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still heaped."""
        self._live -= 1
        self._cancelled_in_heap += 1
        if (len(self._heap) >= _COMPACTION_MIN_SIZE
                and self._cancelled_in_heap * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries."""
        for event in self._heap:
            if event.cancelled:
                event.queue = None
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
