"""Node/process abstraction with serialized processing and cost accounting.

Each protocol participant (client, agreement replica, execution replica,
firewall filter, baseline server) is a :class:`Process`.  A process handles
one message or timer at a time: if a delivery arrives while the node is busy
it is deferred until the node frees up.  While handling a message the process
*charges* virtual processing time -- cryptographic operations, application
execution, per-message overhead -- and the sum of those charges determines
when the node becomes free again and when its outgoing messages actually hit
the network.

This per-node serialization is what makes the throughput experiments
(Figure 5) meaningful: an execution node that spends 15 ms producing a
threshold signature for every reply saturates at ~66 requests/second, exactly
the effect the paper reports.

Runtime-backend contract
------------------------
``Process`` is runtime-agnostic: it talks to *a* scheduler and *a* network
(see :mod:`repro.runtime.interface`).  Any backend hosting processes must
preserve these invariants, which protocol code relies on:

* **Handler atomicity.**  ``on_message`` / timer callbacks never interleave
  on one node: a handler runs to completion before the next delivery or
  timer fire is processed.  The simulator gets this from busy-deferral on a
  single event queue; the asyncio backend from synchronous handlers on a
  single-threaded loop.
* **Send-after-handler.**  Messages sent inside a handler enter the network
  when the handler's charged work completes (the outbox flush), never
  mid-handler -- so a node's outbound messages reflect its post-handler
  state.
* **Charges are exclusive occupancy.**  ``charge(ms)`` models work that
  occupies the node: under the simulator it extends ``busy_until`` (later
  deliveries defer); under a real backend it may burn CPU instead (the
  ``_burn`` hook).  Either way, a verification that hits the certificate
  cache charges nothing.
* **Crash semantics.**  A crashed node silently drops deliveries, timer
  fires, and sends; ``recover()`` only clears the flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..util.ids import NodeId
from .scheduler import Scheduler, Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..net.network import Network
    from ..net.message import Message


@dataclass
class ProcessStats:
    """Per-node counters collected during a simulation run."""

    messages_received: int = 0
    messages_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    busy_ms: float = 0.0
    handler_invocations: int = 0
    timer_fires: int = 0
    crypto_ops: Dict[str, int] = field(default_factory=dict)

    def record_crypto(self, op: str, count: int = 1) -> None:
        self.crypto_ops[op] = self.crypto_ops.get(op, 0) + count

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of virtual time this node spent processing."""
        if elapsed_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / elapsed_ms)


class Process:
    """Base class for all simulated nodes.

    Subclasses implement :meth:`on_message` and may use :meth:`send`,
    :meth:`multicast`, :meth:`set_timer`, and :meth:`charge`.
    """

    def __init__(self, node_id: NodeId, scheduler: Scheduler) -> None:
        self.node_id = node_id
        self.scheduler = scheduler
        self.network: Optional["Network"] = None
        self.stats = ProcessStats()
        #: per-node instruments from the scheduler's observability hub (a
        #: shared no-op registry when observability is disabled) plus the
        #: system-wide tracer; ``self.tracing`` is cached so hot paths can
        #: skip trace-id construction with one attribute test.
        self.obs = scheduler.obs
        self.metrics = self.obs.registry_for(node_id.name)
        self.tracing = self.obs.tracer.enabled
        self.crashed = False
        #: real-runtime cost hook: when set (by a real backend's network at
        #: registration), ``charge`` burns CPU through it instead of doing
        #: virtual-time accounting.  ``None`` under the simulator.
        self._burn: Optional[Callable[[float], None]] = None
        self._busy_until = 0.0
        self._in_handler = False
        self._pending_cost = 0.0
        self._outbox: List[Tuple[NodeId, "Message"]] = []

    # ------------------------------------------------------------------ #
    # Wiring.
    # ------------------------------------------------------------------ #

    def attach_network(self, network: "Network") -> None:
        """Connect this process to the simulated network (done by the builder)."""
        self.network = network

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.scheduler.now

    @property
    def busy_until(self) -> float:
        """Virtual time at which this node finishes its current work."""
        return self._busy_until

    # ------------------------------------------------------------------ #
    # Message handling entry points (called by the network).
    # ------------------------------------------------------------------ #

    def deliver(self, sender: NodeId, message: "Message", size: int) -> None:
        """Called by the network when a message arrives at this node.

        If the node is busy the delivery is deferred to ``busy_until``;
        otherwise the handler runs immediately.  Crashed nodes drop
        everything silently.
        """
        if self.crashed:
            return
        if self._busy_until > self.now + 1e-12 or self._in_handler:
            self.scheduler.call_at(
                max(self._busy_until, self.now),
                lambda: self.deliver(sender, message, size),
                label=f"{self.node_id}:deferred-delivery",
            )
            return
        self.stats.messages_received += 1
        self.stats.bytes_received += size
        self._run_handler(lambda: self.on_message(sender, message))

    def fire_timer(self, callback: Callable[[], None]) -> None:
        """Run a timer callback under the same busy/cost accounting as messages."""
        if self.crashed:
            return
        if self._busy_until > self.now + 1e-12 or self._in_handler:
            self.scheduler.call_at(
                max(self._busy_until, self.now),
                lambda: self.fire_timer(callback),
                label=f"{self.node_id}:deferred-timer",
            )
            return
        self.stats.timer_fires += 1
        self._run_handler(callback)

    def _run_handler(self, handler: Callable[[], None]) -> None:
        """Run ``handler`` with cost accounting and deferred sends."""
        if self._in_handler:
            raise SimulationError(f"{self.node_id} re-entered its handler")
        self._in_handler = True
        self._pending_cost = 0.0
        self._outbox = []
        try:
            handler()
        finally:
            self._in_handler = False
        completion = self.now + self._pending_cost
        self._busy_until = completion
        self.stats.busy_ms += self._pending_cost
        self.stats.handler_invocations += 1
        outbox, self._outbox = self._outbox, []
        if not outbox:
            return
        if completion <= self.now + 1e-12:
            self._flush(outbox)
        else:
            self.scheduler.call_at(
                completion, lambda: self._flush(outbox),
                label=f"{self.node_id}:flush",
            )

    def _flush(self, outbox: List[Tuple[NodeId, "Message"]]) -> None:
        if self.crashed or self.network is None:
            return
        for destination, message in outbox:
            self.network.send(self.node_id, destination, message)
            self.stats.messages_sent += 1

    # ------------------------------------------------------------------ #
    # API for subclasses.
    # ------------------------------------------------------------------ #

    def on_message(self, sender: NodeId, message: "Message") -> None:
        """Handle an incoming message.  Subclasses override this."""
        raise NotImplementedError

    def on_start(self) -> None:
        """Hook invoked once when the simulation is assembled."""

    def charge(self, milliseconds: float) -> None:
        """Charge ``milliseconds`` of processing time to the current handler.

        Outside of a handler (e.g. during setup) the charge is recorded as
        busy time starting now.

        Under a real-time backend (``_burn`` set) the charge is burned as
        actual CPU immediately and only tallied in ``stats.busy_ms``: the
        wall clock, not virtual accounting, then determines when this node
        gets to its next message.
        """
        if milliseconds < 0:
            raise SimulationError("cannot charge negative processing time")
        if self._burn is not None:
            self._burn(milliseconds)
            self.stats.busy_ms += milliseconds
            return
        if self._in_handler:
            self._pending_cost += milliseconds
        else:
            self._busy_until = max(self._busy_until, self.now) + milliseconds
            self.stats.busy_ms += milliseconds

    def send(self, destination: NodeId, message: "Message") -> None:
        """Send ``message`` to ``destination`` when the current handler completes."""
        if self.crashed:
            return
        if self._in_handler:
            self._outbox.append((destination, message))
            return
        if self.network is None:
            raise SimulationError(f"{self.node_id} is not attached to a network")
        self.network.send(self.node_id, destination, message)
        self.stats.messages_sent += 1

    def multicast(self, destinations: List[NodeId], message: "Message") -> None:
        """Send ``message`` to every node in ``destinations`` (excluding self)."""
        for destination in destinations:
            if destination != self.node_id:
                self.send(destination, message)

    def set_timer(self, delay: float, callback: Callable[[], None],
                  label: str = "") -> Timer:
        """Schedule ``callback`` to run on this node after ``delay`` ms."""
        return self.scheduler.call_after(
            delay, lambda: self.fire_timer(callback),
            label=label or f"{self.node_id}:timer",
        )

    def trace_event(self, trace_id: str, event: str) -> None:
        """Record a span event for ``trace_id`` at this node, now.

        Pure observation -- no charge, no event, no RNG -- so calling it can
        never perturb the simulation.  Callers on hot paths should guard
        with ``if self.tracing`` to avoid building trace ids for nothing.
        """
        self.obs.tracer.record(trace_id, event, self.node_id.name, self.now)

    def crash(self) -> None:
        """Crash this node: it stops sending, receiving, and firing timers."""
        self.crashed = True

    def recover(self) -> None:
        """Clear the crash flag (state recovery is the subclass's business)."""
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.node_id}>"
