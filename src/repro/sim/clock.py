"""Virtual clock for the discrete-event simulator.

Time is measured in virtual milliseconds as a float.  Only the scheduler is
allowed to advance the clock; protocol code reads it through
:meth:`VirtualClock.now`.
"""

from __future__ import annotations

from ..errors import SimulationError


class VirtualClock:
    """Monotonically non-decreasing virtual clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError("virtual time cannot start before zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Advance the clock to ``when``.

        Raises :class:`SimulationError` if ``when`` is in the past; the
        event queue guarantees events are popped in timestamp order, so a
        violation here indicates a kernel bug rather than a protocol bug.
        """
        if when < self._now - 1e-9:
            raise SimulationError(
                f"cannot move the clock backwards from {self._now} to {when}"
            )
        if when > self._now:
            self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VirtualClock(now={self._now:.3f}ms)"
