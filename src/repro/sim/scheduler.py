"""The discrete-event scheduler.

The scheduler owns the virtual clock and the event queue and is the only
component allowed to advance time.  Protocol code interacts with it through
:meth:`Scheduler.call_at` / :meth:`Scheduler.call_after` (one-shot callbacks)
and the :class:`Timer` handles they return.

Runtime-backend contract
------------------------
This class is the reference implementation of the scheduler half of the
:class:`~repro.runtime.interface.Runtime` seam.  Any replacement clock
(e.g. the wall-clock scheduler in :mod:`repro.runtime.asyncio_rt`) must
preserve the surface protocol code actually uses, with these semantics:

* **Timer semantics.**  ``call_at`` / ``call_after`` schedule one-shot
  callbacks and return handles exposing ``deadline``, ``active`` (true
  until fired or cancelled -- event state, never a clock comparison), and
  ``cancel()`` (idempotent, no-op after firing).  ``call_after`` rejects
  negative delays.  Two timers for the same instant fire in creation
  order under the simulator; real backends may not guarantee this and
  protocol code must not rely on it.
* **Monotonic time.**  ``now`` (milliseconds) never decreases, and only
  the scheduler advances it.  Under the simulator time jumps between
  events and is exact; real backends derive it from a monotonic clock.
* **Determinism contract.**  ``random`` is the *only* entropy source
  protocol code may touch; it is seeded once and forked by label, so a
  given seed yields a bit-identical run under the simulator.  Real
  backends keep the same RNG (protocol-level draws stay reproducible)
  but lose run-level determinism to socket and OS-thread timing.
* **Progress accounting.**  ``events_processed`` increases monotonically
  with each dispatched event; protocol code uses it only for memoisation
  stamps ("did anything happen since I last looked"), never as a clock.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import LivenessTimeoutError, SimulationError
from ..obs import DISABLED_HUB, ObservabilityHub
from .clock import VirtualClock
from .events import Event, EventQueue
from .rand import DeterministicRandom


class Timer:
    """Handle to a scheduled callback, supporting cancellation and queries."""

    def __init__(self, scheduler: "Scheduler", event: Event) -> None:
        self._scheduler = scheduler
        self._event = event

    @property
    def deadline(self) -> float:
        """Virtual time at which the callback fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the callback has neither fired nor been cancelled.

        This is pure event state: a timer scheduled for the *current*
        instant is still active until the scheduler actually runs it
        (inferring liveness from a time comparison misreported exactly that
        case when floating-point noise pushed ``now`` past the deadline).
        """
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self._event.cancel()


class Scheduler:
    """Discrete-event scheduler with a virtual clock and deterministic RNG."""

    def __init__(self, seed: int = 0) -> None:
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.random = DeterministicRandom(seed)
        #: observability hub processes pick their registries/tracer up from;
        #: the system builder replaces this before constructing any process.
        #: The hub only ever *observes* (no charges, events, or RNG draws),
        #: so swapping it cannot change the simulation's virtual-time results.
        self.obs: ObservabilityHub = DISABLED_HUB
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # Time and scheduling primitives.
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    def call_at(self, when: float, callback: Callable[[], None], label: str = "") -> Timer:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self.now - 1e-9:
            raise SimulationError(
                f"cannot schedule an event at {when} (now is {self.now})"
            )
        event = self.queue.push(max(when, self.now), callback, label)
        return Timer(self, event)

    def call_after(self, delay: float, callback: Callable[[], None], label: str = "") -> Timer:
        """Schedule ``callback`` after ``delay`` virtual milliseconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.call_at(self.now + delay, callback, label)

    # ------------------------------------------------------------------ #
    # Running the simulation.
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.fired = True
        self._events_processed += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the event queue drains, ``until`` is reached, or
        ``max_events`` events have been processed.  Returns the final time."""
        processed = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        if until is not None and self.now < until and self.queue.peek_time() is None:
            self.clock.advance_to(until)
        return self.now

    def run_until(self, predicate: Callable[[], bool], timeout: float,
                  description: str = "condition") -> float:
        """Run until ``predicate()`` becomes true.

        Raises :class:`LivenessTimeoutError` if the predicate is still false
        when virtual time reaches ``now + timeout`` or the event queue drains.
        """
        deadline = self.now + timeout
        if predicate():
            return self.now
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
            if predicate():
                return self.now
        raise LivenessTimeoutError(
            f"{description} did not hold within {timeout}ms of virtual time "
            f"(now={self.now:.3f}ms, pending events={len(self.queue)})"
        )
