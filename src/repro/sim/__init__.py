"""Discrete-event simulation kernel.

The kernel provides a virtual clock, an event queue, and a node/process
abstraction with per-node serialized processing and cost accounting.  All of
the paper's latency and throughput results are measured in virtual time
produced by this kernel together with the cost model in :mod:`repro.crypto.costs`.
"""

from .clock import VirtualClock
from .events import Event, EventQueue
from .scheduler import Scheduler, Timer
from .process import Process, ProcessStats
from .rand import DeterministicRandom

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "Scheduler",
    "Timer",
    "Process",
    "ProcessStats",
    "DeterministicRandom",
]
