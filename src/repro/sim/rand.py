"""Deterministic randomness for reproducible simulations.

Every source of randomness in the simulator -- network delays, drop decisions,
workload inter-arrival jitter, Byzantine behaviour choices -- draws from a
:class:`DeterministicRandom` stream derived from the configuration seed, so
that every simulation run is exactly repeatable.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """Thin wrapper around :class:`random.Random` with named sub-streams.

    Sub-streams (``fork``) let independent components consume randomness
    without perturbing each other: adding one extra draw in the network model
    does not change the workload generator's sequence.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self._seed = seed
        self._label = label
        self._rng = random.Random(f"{seed}:{label}")

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def label(self) -> str:
        return self._label

    def fork(self, label: str) -> "DeterministicRandom":
        """Return an independent stream identified by ``label``."""
        return DeterministicRandom(self._seed, f"{self._label}/{label}")

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        return self._rng.randbytes(n)

    def choice(self, options: Sequence[T]) -> T:
        """Uniformly choose one element of ``options``."""
        return self._rng.choice(options)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def exponential(self, mean: float) -> float:
        """Exponentially distributed value with the given mean (>= 0)."""
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)
