"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to discriminate between configuration problems, protocol violations,
cryptographic verification failures, and simulation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A system configuration is internally inconsistent or violates the
    replication-cost arithmetic required by the protocol (e.g. fewer than
    ``3f + 1`` agreement nodes)."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class VerificationError(CryptoError):
    """A MAC, signature, threshold signature, or certificate failed to verify."""


class UnknownKeyError(CryptoError):
    """A key required for an operation is not present in the keystore."""


class CertificateError(CryptoError):
    """A certificate is malformed or does not carry enough valid authenticators."""


class ProtocolError(ReproError):
    """A protocol participant received a message that violates the protocol
    (wrong view, bad sequence number, duplicate with conflicting contents...)."""


class InvalidMessageError(ProtocolError):
    """A message failed structural validation before protocol processing."""


class StateMachineError(ReproError):
    """The replicated application state machine rejected an operation."""


class CheckpointError(ReproError):
    """Checkpoint creation, certification, or restoration failed."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an inconsistency
    (e.g. scheduling an event in the past)."""


class NetworkError(ReproError):
    """The simulated network was asked to do something impossible, such as
    delivering a message over a link that the topology forbids."""


class TopologyError(NetworkError):
    """A node attempted to communicate with a peer it has no physical link to.

    In the privacy-firewall deployment this is the error that enforces the
    paper's restricted-communication requirement."""


class FirewallError(ReproError):
    """A privacy-firewall filter node detected a protocol violation."""


class LivenessTimeoutError(ReproError):
    """A bounded simulation ran out of virtual time before an operation that
    the liveness argument says must complete actually completed."""
