"""BASE-style Byzantine agreement library.

The agreement cluster orders client requests with a PBFT-style three-phase
protocol run by ``3f + 1`` replicas, batches (bundles) requests, checkpoints
its log, and changes views when the primary appears faulty.  It does **not**
execute requests against the application: instead each replica "executes" an
ordered batch against a pluggable *local state machine*
(:class:`~repro.agreement.local.LocalExecutor`).

* In the separated architecture the local state machine is the
  :class:`~repro.core.message_queue.MessageQueue`, which relays ordered
  batches to the execution cluster and relays reply certificates back to
  clients -- exactly the four-line change to BASE the paper describes.
* In the coupled baseline (BASE/Same) the local state machine is the
  :class:`~repro.core.baseline.DirectExecutor`, which runs the application
  and replies to clients directly, reproducing the traditional architecture.
"""

from .local import LocalExecutor, RetryOutcome
from .log import AgreementLog, LogEntry
from .batching import Batcher
from .replica import AgreementReplica

__all__ = [
    "LocalExecutor",
    "RetryOutcome",
    "AgreementLog",
    "LogEntry",
    "Batcher",
    "AgreementReplica",
]
