"""The agreement replica's message log.

One :class:`LogEntry` per sequence number tracks the pre-prepare, the prepare
and commit votes received, and the delivery status.  The :class:`AgreementLog`
also tracks checkpoint votes and the stable checkpoint, and implements the
watermark window that bounds how far ahead of the stable checkpoint the
protocol may run (PBFT's ``[h, h + L]`` window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crypto.certificate import Authenticator, Certificate
from ..messages.agreement import CommitMsg, Prepare, PrePrepare
from ..util.ids import NodeId


@dataclass
class LogEntry:
    """Protocol state for one (view, sequence number) slot."""

    seq: int
    view: int
    pre_prepare: Optional[PrePrepare] = None
    prepares: Dict[NodeId, Prepare] = field(default_factory=dict)
    commits: Dict[NodeId, CommitMsg] = field(default_factory=dict)
    commit_authenticators: Dict[NodeId, Authenticator] = field(default_factory=dict)
    prepared: bool = False
    committed: bool = False
    #: handed to the local executor's out-of-order staging buffer (the
    #: per-shard frontier releases it; independent of ``delivered``, which
    #: tracks the contiguous in-order bookkeeping pass)
    staged: bool = False
    delivered: bool = False
    #: the batch carries a config operation (e.g. a partition-map change):
    #: its position in the log is an epoch cut, and at most one such entry
    #: may be in flight at a time (the proposer checks the log first)
    config_op: bool = False
    #: the batch is a cross-shard operation marker (a single client-request
    #: certificate whose keys span execution clusters): its position in the
    #: log is the operation's consistent cut.  Unlike config operations,
    #: any number of markers may be in flight -- the release frontier
    #: serialises their cuts for free
    cross_shard: bool = False

    def batch_digest(self) -> Optional[bytes]:
        if self.pre_prepare is None:
            return None
        return self.pre_prepare.batch_digest

    def prepare_count(self, digest: bytes) -> int:
        """Distinct replicas that sent a PREPARE for ``digest`` in this slot."""
        return sum(1 for p in self.prepares.values() if p.batch_digest == digest)

    def commit_count(self, digest: bytes) -> int:
        """Distinct replicas that sent a COMMIT for ``digest`` in this slot."""
        return sum(1 for c in self.commits.values() if c.batch_digest == digest)


class AgreementLog:
    """Sequence-number-indexed log plus checkpoint bookkeeping."""

    def __init__(self, checkpoint_interval: int, window: Optional[int] = None) -> None:
        self.checkpoint_interval = checkpoint_interval
        #: how far past the stable checkpoint agreement may run
        self.window = window if window is not None else 2 * checkpoint_interval
        self._entries: Dict[Tuple[int, int], LogEntry] = {}
        self.stable_seq = 0
        self.last_delivered_seq = 0
        #: per-sequence-number checkpoint votes: seq -> replica -> digest
        self.checkpoint_votes: Dict[int, Dict[NodeId, bytes]] = {}

    # ------------------------------------------------------------------ #
    # Entries.
    # ------------------------------------------------------------------ #

    def entry(self, view: int, seq: int) -> LogEntry:
        """Get or create the log entry for ``(view, seq)``."""
        key = (view, seq)
        if key not in self._entries:
            self._entries[key] = LogEntry(seq=seq, view=view)
        return self._entries[key]

    def existing_entry(self, view: int, seq: int) -> Optional[LogEntry]:
        return self._entries.get((view, seq))

    def entries_for_view(self, view: int) -> List[LogEntry]:
        return [e for (v, _), e in sorted(self._entries.items()) if v == view]

    def prepared_entries_above(self, seq: int) -> List[LogEntry]:
        """All prepared-but-possibly-undelivered entries above ``seq``
        (across views) -- the evidence a view change must carry forward."""
        best: Dict[int, LogEntry] = {}
        for (view, entry_seq), entry in self._entries.items():
            if entry_seq <= seq or not entry.prepared or entry.pre_prepare is None:
                continue
            current = best.get(entry_seq)
            if current is None or view > current.view:
                best[entry_seq] = entry
        return [best[s] for s in sorted(best)]

    # ------------------------------------------------------------------ #
    # Config operations (partition-map changes).
    # ------------------------------------------------------------------ #

    def note_config_op(self, view: int, seq: int) -> None:
        """Mark the entry at ``(view, seq)`` as carrying a config operation."""
        self.entry(view, seq).config_op = True

    def note_cross_shard(self, view: int, seq: int) -> None:
        """Mark the entry at ``(view, seq)`` as a cross-shard marker."""
        self.entry(view, seq).cross_shard = True

    def cross_shard_count(self) -> int:
        """Live cross-shard marker entries (introspection for tests)."""
        return sum(1 for entry in self._entries.values() if entry.cross_shard)

    def pending_config_seqs(self) -> List[int]:
        """Sequence numbers of config operations not yet delivered.

        The map-change proposer refuses to order a new change while one is
        in flight: two concurrent cuts would make the second a cut-time
        no-op anyway (its ``parent_epoch`` goes stale), so serialising them
        here avoids burning sequence numbers on dead proposals.
        """
        return sorted({seq for (_, seq), entry in self._entries.items()
                       if entry.config_op and not entry.delivered
                       and seq > self.last_delivered_seq})

    def has_pending_config_op(self) -> bool:
        return bool(self.pending_config_seqs())

    # ------------------------------------------------------------------ #
    # Watermarks.
    # ------------------------------------------------------------------ #

    @property
    def low_watermark(self) -> int:
        return self.stable_seq

    @property
    def high_watermark(self) -> int:
        return self.stable_seq + self.window

    def in_watermarks(self, seq: int) -> bool:
        return self.low_watermark < seq <= self.high_watermark

    # ------------------------------------------------------------------ #
    # Checkpoints.
    # ------------------------------------------------------------------ #

    def is_checkpoint_seq(self, seq: int) -> bool:
        return seq % self.checkpoint_interval == 0

    def add_checkpoint_vote(self, seq: int, replica: NodeId, digest: bytes) -> None:
        self.checkpoint_votes.setdefault(seq, {})[replica] = digest

    def checkpoint_support(self, seq: int, digest: bytes) -> int:
        votes = self.checkpoint_votes.get(seq, {})
        return sum(1 for d in votes.values() if d == digest)

    def mark_stable(self, seq: int) -> None:
        """Advance the stable checkpoint and garbage collect older state."""
        if seq <= self.stable_seq:
            return
        self.stable_seq = seq
        self._entries = {
            key: entry for key, entry in self._entries.items() if key[1] > seq
        }
        self.checkpoint_votes = {
            s: votes for s, votes in self.checkpoint_votes.items() if s > seq
        }

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests.
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        """Number of live log entries (post garbage collection)."""
        return len(self._entries)

    def delivered_count(self) -> int:
        return sum(1 for entry in self._entries.values() if entry.delivered)
