"""The local state machine interface of the agreement library.

The original BASE library executes each agreed request against the
application state machine hosted on the same node.  The paper's modification
replaces that state machine with a message queue; our agreement replica is
written against this small interface so that both the separated architecture
(message queue) and the coupled baseline (direct executor) plug in without
touching the agreement protocol.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Optional, Tuple

from ..crypto.certificate import Certificate
from ..statemachine.nondet import NonDetInput


class RetryOutcome(enum.Enum):
    """Result of :meth:`LocalExecutor.retry_hint` for a retransmitted request."""

    #: the executor handled the retransmission (sent a cached reply or
    #: retransmitted the pending certificates); nothing more to do.
    HANDLED = "handled"
    #: the executor has no record of the request; the agreement replica must
    #: run agreement again to assign the (old) request a fresh sequence number.
    NEED_ORDER = "need-order"


class LocalExecutor(ABC):
    """What the agreement replica 'executes' ordered batches against."""

    @abstractmethod
    def execute_batch(self, seq: int, view: int,
                      request_certificates: Tuple[Certificate, ...],
                      agreement_certificate: Certificate,
                      nondet: NonDetInput) -> None:
        """Deliver one agreed batch, in sequence-number order.

        For the message queue this enqueues the batch for asynchronous
        processing by the execution cluster; for the coupled baseline it runs
        the requests against the application and replies to clients.
        """

    @abstractmethod
    def retry_hint(self, request_certificate: Certificate) -> RetryOutcome:
        """Handle a client-initiated retransmission of an old request."""

    def checkpoint_digest(self, seq: int) -> bytes:
        """Digest of the executor state at sequence number ``seq``.

        Used by the agreement cluster's checkpoint protocol.  The message
        queue's durable state at a checkpoint is fully determined by ``seq``
        (its reply cache is explicitly excluded from checkpoints), so the
        digest covers the sequence number plus whatever transferable
        frontier state :meth:`checkpoint_sync_state` ships with the vote.
        """
        return self.sync_state_digest(seq, self.checkpoint_sync_state(seq))

    def sync_state_digest(self, seq: int,
                          sync_state: Tuple[Tuple[str, object], ...]) -> bytes:
        """Digest binding a checkpoint cut to its transferable state.

        The hosting replica uses this to validate the ``sync_state`` carried
        by a peer's checkpoint vote against the quorum-certified digest
        before adopting it in a state transfer -- a Byzantine replica can
        claim the right digest but cannot forge state that matches it.
        """
        from ..crypto.digest import digest

        return digest({"local-state-at": seq, "sync": sync_state})

    def checkpoint_sync_state(self, seq: int) -> Tuple[Tuple[str, object], ...]:
        """Transferable frontier state at the checkpoint cut (key/value
        pairs).  Deterministic across correct replicas at the same cut; the
        default executor carries none."""
        return ()

    def highest_ready_seq(self) -> Optional[int]:
        """Highest sequence number for which a reply is known.

        The agreement replica uses this for pipeline back-pressure: it will
        not start agreement for sequence number ``n`` until the executor has
        seen a reply for ``n - P`` (the paper's pipeline depth ``P``).
        ``None`` means "no back-pressure information" (coupled baseline).
        """
        return None

    def seq_answered(self, seq: int) -> bool:
        """Whether a reply for sequence number ``seq`` has been seen.

        With sharded execution replies complete out of global order, so this
        can be true for sequence numbers above the contiguous
        :meth:`highest_ready_seq` watermark; the default derives the answer
        from that watermark alone (the unsharded behaviour).
        """
        ready = self.highest_ready_seq()
        return ready is not None and seq <= ready

    def shard_outstanding(self, shard: int) -> int:
        """Batches sent towards execution shard ``shard`` but not yet
        answered (0 when the executor is not sharded).  The agreement
        replica combines this with its own proposal tracking to size the
        per-shard pipeline windows
        (:attr:`repro.config.PipelineConfig.per_shard_depth`)."""
        return 0

    def on_stable_checkpoint(self, seq: int) -> None:
        """Notification that the agreement cluster's checkpoint at ``seq`` is stable."""

    def sync_to_checkpoint(self, seq: int,
                           sync_state: Tuple[Tuple[str, object], ...]) -> None:
        """The hosting replica state-transferred its delivery frontier to a
        stable checkpoint at ``seq``; batches at or below it that were never
        delivered locally will never arrive.  ``sync_state`` is the
        digest-verified :meth:`checkpoint_sync_state` a correct replica
        shipped with its checkpoint vote.  Executors with release frontiers
        of their own must adopt it and skip the gap (the default executor
        has none, so this is a no-op)."""
