"""The agreement replica.

Each of the ``3f + 1`` agreement nodes runs an :class:`AgreementReplica`,
which implements a PBFT-style three-phase protocol (following Castro &
Liskov, as the BASE library does):

1. the primary of the current view assigns the next sequence number to a
   batch of request certificates and multicasts a ``PRE-PREPARE``;
2. backups validate it (correct primary, view, watermarks, request
   authenticity, batch digest, sane nondeterminism proposal) and multicast
   ``PREPARE``;
3. once a replica has the pre-prepare and ``2f`` matching prepares it is
   *prepared* and multicasts ``COMMIT`` carrying its authenticator over the
   agreement-certificate body;
4. once it has ``2f + 1`` matching commits it is *committed*: it assembles
   the agreement certificate ``<COMMIT, v, n, d, A>_{A,E,2f+1}`` out of the
   commit authenticators and "executes" the batch against its local state
   machine (message queue or direct executor) in sequence-number order.

The replica also implements checkpointing with watermarks, garbage
collection, and a view-change protocol that re-proposes prepared batches so
that an agreed ordering survives a faulty primary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..config import AuthenticationScheme, SystemConfig
from ..crypto.certificate import Certificate
from ..crypto.keys import Keystore
from ..crypto.provider import CryptoProvider
from ..errors import ProtocolError
from ..messages.agreement import (
    AgreementCertBody,
    AgreementCheckpoint,
    CommitMsg,
    ConfigOperation,
    NewView,
    Prepare,
    PreparedProof,
    PrePrepare,
    ViewChange,
)
from ..messages.reply import BatchReply
from ..messages.request import ClientRequest, RequestEnvelope
from ..net.message import Message
from ..obs import request_trace_id
from ..sim.process import Process
from ..sim.scheduler import Scheduler, Timer
from ..statemachine.nondet import NonDeterminismResolver, NonDetInput
from ..util.ids import NodeId
from .batching import ANY_SHARD, Batcher, make_bundle_controller
from .local import LocalExecutor, RetryOutcome
from .log import AgreementLog, LogEntry

#: EWMA smoothing factor for the measured order-to-reply round trip
_RTT_ALPHA = 0.125
#: the RTT-derived gather window is this fraction of the smoothed round trip
_RTT_GATHER_FRACTION = 0.5
#: floor of the RTT-derived gather window (ms)
_MIN_GATHER_MS = 0.5


class AgreementReplica(Process):
    """One replica of the BASE-style agreement cluster."""

    def __init__(self, node_id: NodeId, scheduler: Scheduler, config: SystemConfig,
                 keystore: Keystore, local: LocalExecutor,
                 agreement_ids: List[NodeId], client_ids: List[NodeId],
                 cert_verifiers: Optional[List[NodeId]] = None) -> None:
        super().__init__(node_id, scheduler)
        self.config = config
        self.local = local
        self.agreement_ids = list(agreement_ids)
        self.client_ids = list(client_ids)
        #: every node that must be able to verify agreement certificates
        #: (agreement peers, execution nodes, and firewall filters).
        self.cert_verifiers = list(cert_verifiers or agreement_ids)
        self.crypto = CryptoProvider(node_id, keystore, config.crypto,
                                     charge=self.charge,
                                     record=self.stats.record_crypto,
                                     perf=config.perf)
        self.index = self.agreement_ids.index(node_id)
        self.f = config.f

        self.view = 0
        self.next_seq = 1
        self.log = AgreementLog(config.checkpoint_interval)
        self.batcher = Batcher(controller=make_bundle_controller(config),
                               metrics=self.metrics)
        self._adaptive_batching = config.batching.mode == "adaptive"
        #: observability instruments (shared no-ops when metrics are off)
        self._h_batch_size = self.metrics.histogram(
            "agreement.batch_size", bounds=(1, 2, 4, 8, 16, 32, 64, 128))
        self._h_agree_ms = self.metrics.histogram("agreement.commit_ms")
        self._c_batches = self.metrics.counter("agreement.batches_delivered")
        self._c_requests = self.metrics.counter("agreement.requests_delivered")
        self.metrics.register_probe("agreement.state", lambda: {
            "view": self.view,
            "view_changes_completed": self.view_changes_completed,
            "primaries_deposed": self.primaries_deposed,
            "checkpoint_syncs": self.checkpoint_syncs,
            "cross_shard_ordered": self.cross_shard_ordered,
            "rtt_ewma_ms": self._rtt_ewma,
            "cert_cache_hits": self.crypto.cache.hits if self.crypto.cache else 0,
            "cert_cache_misses": self.crypto.cache.misses if self.crypto.cache else 0,
        })
        self.nondet = NonDeterminismResolver()

        #: highest timestamp ordered (assigned a sequence number) per client
        self.ordered_timestamp: Dict[NodeId, int] = {}
        #: client requests whose delivery we are waiting for (liveness timer)
        self._request_deadlines: Dict[Tuple[NodeId, int], Timer] = {}
        self._batch_timer: Optional[Timer] = None
        #: request count per own-proposed batch still awaiting its reply
        #: (the adaptive-batching congestion signal)
        self._inflight_batch_sizes: Dict[int, int] = {}
        #: per own-proposed batch: destination shard -> owned request count
        #: (sizes the per-shard pipeline windows and bundle controllers)
        self._inflight_shard_requests: Dict[int, Dict[int, int]] = {}
        #: proposal time per own batch awaiting its reply (RTT sampling)
        self._batch_sent_at: Dict[int, float] = {}
        #: smoothed order-to-reply round trip (None until the first sample)
        self._rtt_ewma: Optional[float] = None
        #: simulator event stamp of the last in-flight prune (one scan per event)
        self._prune_stamp: Optional[int] = None
        #: deterministic request -> shard mapping (set by the sharded system
        #: when per-shard pipelining is configured; None = global pipeline)
        self._shard_classifier = None
        #: cross-shard probe: request -> touched shard list (len >= 2) or
        #: None, judged at the live partition-map epoch (set by the sharded
        #: system when cross-shard operations are enabled)
        self._cross_shard_probe = None
        #: cross-shard requests awaiting their single-certificate marker
        #: batch (drained ahead of the per-shard bundles)
        self._cross_shard_pending: List[Certificate] = []
        #: rebalance controller + load observer (set by the sharded system
        #: when dynamic rebalancing is configured)
        self._rebalancer = None
        self._rebalance_observe = None
        #: absolute bound on the current idle-gather window (None when no
        #: idle gather is in progress)
        self._gather_deadline: Optional[float] = None

        # View change state.
        self._view_change_votes: Dict[int, Dict[NodeId, ViewChange]] = {}
        self._view_changing = False
        self._target_view = 0
        #: consecutive failed view-change escalations since the last
        #: NEW-VIEW (drives the exponential escalation backoff)
        self._view_change_attempts = 0
        #: recently-deposed primaries: node -> last view through which the
        #: local target selection skips it
        self._deposed_until: Dict[NodeId, int] = {}
        #: censorship-resistant request path master switch.  Test-only: the
        #: fuzz harness clears it to plant the "censoring primary never
        #: triggers forwarding or a view change" liveness bug the
        #: bounded-progress oracle must catch.  Never clear it elsewhere.
        self.request_liveness_defence = True
        #: digest-verified transferable frontier state from checkpoint votes,
        #: keyed by (seq, state_digest); consulted on checkpoint state
        #: transfer, pruned as checkpoints stabilise
        self._checkpoint_sync_states: Dict[Tuple[int, bytes],
                                           Tuple[Tuple[str, Any], ...]] = {}

        #: stable checkpoints observed since entering the current view
        #: (drives proactive primary rotation when the knob is set)
        self._stable_checkpoints_in_view = 0

        # Statistics used by benchmarks.
        self.batches_delivered = 0
        self.requests_delivered = 0
        self.view_changes_completed = 0
        self.cross_shard_ordered = 0
        self.primaries_deposed = 0
        self.checkpoint_syncs = 0
        self.planned_rotations = 0

    # ------------------------------------------------------------------ #
    # Role helpers.
    # ------------------------------------------------------------------ #

    def primary_of(self, view: int) -> NodeId:
        """The primary replica for ``view`` (round-robin rotation)."""
        return self.agreement_ids[view % len(self.agreement_ids)]

    def next_view_target(self, from_view: int) -> int:
        """The view this replica votes for when abandoning ``from_view``.

        Normally ``from_view + 1``, but with
        :attr:`~repro.config.SystemConfig.skip_deposed_primaries` the scan
        advances past views whose round-robin primary was recently deposed,
        so a chronically slow or censoring leader cannot recapture the view
        the moment its successor stumbles.  The scan is bounded to one full
        rotation: if every candidate is deposed, liveness beats placement
        and the immediate successor is used.
        """
        target = from_view + 1
        if not self.config.skip_deposed_primaries:
            return target
        for candidate in range(target, target + len(self.agreement_ids)):
            if self._deposed_until.get(self.primary_of(candidate), -1) < candidate:
                return candidate
        return target

    def _note_deposed(self, primary: NodeId, abandoned_view: int) -> None:
        """Skip ``primary`` in target selection for one full rotation."""
        if not self.config.skip_deposed_primaries:
            return
        until = abandoned_view + len(self.agreement_ids)
        if self._deposed_until.get(primary, -1) < until:
            self._deposed_until[primary] = until
            self.primaries_deposed += 1

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.node_id

    def enable_per_shard_batching(self, classifier) -> None:
        """Partition the pending-request FIFO by destination shard.

        ``classifier`` maps a :class:`ClientRequest` to its owning shard
        (the shard router's deterministic mapping; with rebalancing it reads
        the router queue's live epoch, so freshly admitted requests queue by
        the current map).  The primary then forms single-shard bundles,
        sizes each shard's bundles with its own AIMD controller, and admits
        sequence numbers against per-shard pipeline windows
        (:attr:`repro.config.PipelineConfig.per_shard_depth`) instead of the
        global contiguous watermark.
        """
        self._shard_classifier = classifier
        self.batcher = Batcher(
            controller=make_bundle_controller(self.config),
            classifier=lambda cert: classifier(cert.payload),
            controller_factory=lambda: make_bundle_controller(self.config),
            demote_idle_ms=self.config.batching.demote_idle_ms,
            metrics=self.metrics)

    def enable_cross_shard(self, probe) -> None:
        """Install the cross-shard request probe (``repro.sharding``).

        ``probe`` maps a :class:`ClientRequest` to the ascending list of
        shards its keys touch at the hosting router queue's live epoch, or
        ``None`` for single-shard requests.  A cross-shard request is then
        ordered exactly like a config operation -- alone, as a
        single-certificate batch -- so its sequence number is a
        deterministic consistent cut over every touched shard's release
        frontier.
        """
        self._cross_shard_probe = probe

    def _probe_cross_shard(self, request) -> Optional[List[int]]:
        if self._cross_shard_probe is None:
            return None
        if not isinstance(request, ClientRequest):
            return None
        return self._cross_shard_probe(request)

    def attach_rebalancer(self, controller, observe) -> None:
        """Install a rebalance controller (``repro.sharding.rebalance``).

        ``observe()`` returns ``(load_window, current_map)`` from the local
        shard router queue; the replica polls it on a timer and -- when it
        is the primary -- orders the controller's proposed map change
        through the agreement log as a config operation.  Backups carry the
        controller too (any of them may become primary) but stay silent.
        """
        self._rebalancer = controller
        self._rebalance_observe = observe
        self._arm_rebalance_timer()

    def _arm_rebalance_timer(self) -> None:
        self.set_timer(self.config.rebalance.check_interval_ms,
                       self._on_rebalance_check,
                       label=f"{self.node_id}:rebalance-check")

    def _on_rebalance_check(self) -> None:
        if self._rebalancer is None:
            return
        self._arm_rebalance_timer()
        if not self.is_primary or self._view_changing:
            return
        if self.log.has_pending_config_op():
            return  # one epoch cut at a time
        window, pmap = self._rebalance_observe()
        change = self._rebalancer.propose(window, pmap, now=self.now)
        if change is not None and self.propose_map_change(change):
            self._rebalancer.note_ordered(change, now=self.now)

    @property
    def _per_shard_admission(self) -> bool:
        return (self.config.pipeline.per_shard_depth is not None
                and self._shard_classifier is not None)

    # ------------------------------------------------------------------ #
    # Message dispatch.
    # ------------------------------------------------------------------ #

    def on_message(self, sender: NodeId, message: Message) -> None:
        if isinstance(message, RequestEnvelope):
            self.handle_request(sender, message)
        elif isinstance(message, PrePrepare):
            self.handle_pre_prepare(sender, message)
        elif isinstance(message, Prepare):
            self.handle_prepare(sender, message)
        elif isinstance(message, CommitMsg):
            self.handle_commit(sender, message)
        elif isinstance(message, AgreementCheckpoint):
            self.handle_checkpoint(sender, message)
        elif isinstance(message, ViewChange):
            self.handle_view_change(sender, message)
        elif isinstance(message, NewView):
            self.handle_new_view(sender, message)
        elif isinstance(message, BatchReply):
            # Separated architecture: reply certificates from the execution
            # cluster (possibly via the privacy firewall) are handled by the
            # message queue installed as the local state machine.
            handler = getattr(self.local, "on_batch_reply", None)
            if handler is not None:
                handler(sender, message)
        else:
            # Messages the agreement protocol itself does not speak are
            # offered to the local state machine (the multi-log router queue
            # handles cross-log bindings and cuts this way); anything still
            # unknown or corrupted is dropped silently, as the Byzantine
            # fault model requires correct nodes to tolerate arbitrary
            # garbage.
            handler = getattr(self.local, "on_unknown_message", None)
            if handler is not None:
                handler(sender, message)
            return

    # ------------------------------------------------------------------ #
    # Client requests.
    # ------------------------------------------------------------------ #

    def handle_request(self, sender: NodeId, envelope: RequestEnvelope) -> None:
        certificate = envelope.certificate
        request = certificate.payload
        if not isinstance(request, ClientRequest):
            return
        if request.client not in self.client_ids:
            return
        if not self.crypto.verify_certificate(certificate, 1, [request.client]):
            return

        last_ordered = self.ordered_timestamp.get(request.client, -1)
        if request.timestamp <= last_ordered:
            # Retransmission of a request we have already ordered: let the
            # local state machine serve a cached reply or resend pending
            # certificates; only re-run agreement if it has no trace of it.
            outcome = self.local.retry_hint(certificate)
            if outcome is RetryOutcome.HANDLED:
                return
        self._admit_request(certificate, request)

    def _admit_request(self, certificate: Certificate, request: ClientRequest) -> None:
        if self._probe_cross_shard(request) is not None:
            added = self._admit_cross_shard(certificate, request)
        else:
            added = self.batcher.add(certificate, now=self.now)
        if not added:
            return
        if self.tracing:
            self.trace_event(request_trace_id(request.client, request.timestamp),
                             "admit")
        self._arm_request_deadline(request)
        if self.is_primary:
            self.maybe_make_batch()
        elif self.request_liveness_defence:
            # Forward to the primary so a request sent to a backup still makes
            # progress (Castro-Liskov optimisation); the deadline timer
            # triggers a view change if the primary never orders it.
            self.send(self.primary_of(self.view),
                      RequestEnvelope(certificate=certificate))

    def _admit_cross_shard(self, certificate: Certificate,
                           request: ClientRequest) -> bool:
        """Queue a cross-shard request for its own marker batch.

        Cross-shard requests bypass the per-shard bundles: a marker must be
        the *only* certificate of its batch, so that its sequence number is
        a clean cut (the same single-certificate discipline config
        operations use).  Duplicates (a retransmission racing the pending
        marker) are folded like the batcher folds them.
        """
        for pending in self._cross_shard_pending:
            queued: ClientRequest = pending.payload
            if (queued.client == request.client
                    and queued.timestamp == request.timestamp):
                return False
        self._cross_shard_pending.append(certificate)
        return True

    def _drop_cross_shard_pending(self, client: NodeId, timestamp: int) -> None:
        self._cross_shard_pending = [
            certificate for certificate in self._cross_shard_pending
            if not (certificate.payload.client == client
                    and certificate.payload.timestamp <= timestamp)
        ]

    def _arm_request_deadline(self, request: ClientRequest) -> None:
        if not self.request_liveness_defence:
            return
        key = (request.client, request.timestamp)
        if key in self._request_deadlines and self._request_deadlines[key].active:
            return
        timer = self.set_timer(
            self.config.timers.view_change_ms,
            lambda key=key: self._on_request_timeout(key),
            label=f"{self.node_id}:request-deadline",
        )
        self._request_deadlines[key] = timer

    def _clear_request_deadline(self, client: NodeId, timestamp: int) -> None:
        for key in [k for k in self._request_deadlines
                    if k[0] == client and k[1] <= timestamp]:
            self._request_deadlines[key].cancel()
            del self._request_deadlines[key]

    def _on_request_timeout(self, key: Tuple[NodeId, int]) -> None:
        if key not in self._request_deadlines:
            return
        del self._request_deadlines[key]
        client, timestamp = key
        if self.ordered_timestamp.get(client, -1) >= timestamp:
            return
        self.start_view_change(self.next_view_target(self.view))

    # ------------------------------------------------------------------ #
    # Primary: batching and PRE-PREPARE.
    # ------------------------------------------------------------------ #

    def maybe_make_batch(self) -> None:
        """Create a batch now if a full bundle is ready, else arm the batch timer."""
        if not self.is_primary or self._view_changing:
            return
        self._drain_bundles(full_only=True)
        if self._has_pending_work():
            timeout = self.config.timers.batch_timeout_ms
            if (self._adaptive_batching and self._admissible_work()
                    and self._batches_in_flight() <= 1):
                # Group commit with double buffering: at most one batch is
                # awaiting execution, so a long bundle-fill wait would idle
                # the execution cluster -- the next bundle's agreement round
                # should overlap the current bundle's execution.  Gather with
                # a debounced quiet-gap window: each arrival extends the
                # flush by the gather window so the whole burst of client
                # re-submissions following a reply lands in one bundle, and
                # the batch-timeout bound caps the total gather time.
                if self._gather_deadline is None:
                    self._gather_deadline = self.now + timeout
                timeout = min(max(self._gather_deadline - self.now, 0.0),
                              self._gather_window())
                self._cancel_batch_timer()
            if self._batch_timer is None or not self._batch_timer.active:
                self._batch_timer = self.set_timer(
                    timeout, self._on_batch_timeout,
                    label=f"{self.node_id}:batch-timeout")
            elif self._batch_timer.deadline > self.now + timeout + 1e-9:
                # An earlier (longer) flush deadline is superseded.
                self._batch_timer.cancel()
                self._batch_timer = self.set_timer(
                    timeout, self._on_batch_timeout,
                    label=f"{self.node_id}:batch-timeout")
        else:
            # The queue drained through full-bundle takes: a timer armed for
            # an earlier (now ordered) request must not linger, or it fires
            # mid-gathering of the *next* bundle and flushes it prematurely.
            self._cancel_batch_timer()
            self._gather_deadline = None

    def _drain_bundles(self, full_only: bool) -> None:
        """Order every admissible bundle (full bundles only, or -- on a
        flush timeout -- partial ones too).

        Queues are scanned in cross-shard FIFO order, but a queue whose
        shard window is full does not block the queues behind it: that
        head-of-line independence is what lets cold shards keep flowing
        while a hot shard's pipeline is at capacity.
        """
        self._prune_answered()
        self._drain_cross_shard()
        progressed = True
        while progressed:
            progressed = False
            shards = (self.batcher.full_shards() if full_only
                      else self.batcher.shards())
            for shard in shards:
                if self._can_start(self.next_seq, shard=shard):
                    self._make_batch(shard=shard)
                    progressed = True
                    break

    def _drain_cross_shard(self) -> None:
        """Order every admissible pending cross-shard marker (FIFO).

        A marker is always a complete "bundle" of one, so it drains on
        every pass -- full-bundle and flush alike.  A queued request whose
        keys collapsed onto a single shard since admission (a rebalance
        merged them) is handed to the ordinary batcher instead.
        """
        while self._cross_shard_pending:
            certificate = self._cross_shard_pending[0]
            request: ClientRequest = certificate.payload
            touched = self._probe_cross_shard(request)
            if touched is None:
                self._cross_shard_pending.pop(0)
                self.batcher.add(certificate, now=self.now)
                continue
            if not self._can_start_cross(self.next_seq, touched):
                return
            self._cross_shard_pending.pop(0)
            self._gather_deadline = None
            seq = self._order_batch([certificate])
            self.log.note_cross_shard(self.view, seq)
            if self._shard_classifier is not None:
                self._inflight_shard_requests[seq] = {shard: 1
                                                      for shard in touched}
            self.cross_shard_ordered += 1

    def _can_start_cross(self, seq: int, touched: List[int]) -> bool:
        """Admission check for a cross-shard marker.

        The marker occupies one slot in *every* touched shard's local
        sequence, so per-shard admission requires room in each touched
        window; the log's ``[h, h + L]`` watermark window applies as
        always.
        """
        if seq > self.log.high_watermark:
            return False
        if self._per_shard_admission:
            depth = self.config.pipeline.per_shard_depth
            return all(self._shard_in_flight(shard) < depth
                       for shard in touched)
        return self._can_start(seq, shard=None)

    def _has_pending_work(self) -> bool:
        """Pending requests anywhere: the per-shard bundles or the
        cross-shard marker queue."""
        return self.batcher.has_work() or bool(self._cross_shard_pending)

    def _admissible_work(self) -> bool:
        """Whether any pending queue could be ordered right now."""
        if self._cross_shard_pending:
            request = self._cross_shard_pending[0].payload
            touched = self._probe_cross_shard(request)
            if touched is None or self._can_start_cross(self.next_seq, touched):
                return True
        return any(self._can_start(self.next_seq, shard=shard)
                   for shard in self.batcher.shards())

    def _cancel_batch_timer(self) -> None:
        if self._batch_timer is not None and self._batch_timer.active:
            self._batch_timer.cancel()

    def on_pipeline_progress(self) -> None:
        """Called by the local state machine when a reply certificate frees
        pipeline capacity: the primary immediately considers a new batch (the
        group-commit trigger for adaptive bundling)."""
        self._prune_answered()
        if self.is_primary and not self._view_changing:
            self.maybe_make_batch()

    @property
    def _per_shard_timeouts(self) -> bool:
        """Per-shard batch timeouts (``BatchingConfig.timeout_scale_max``):
        a congested shard's partial bundle gets a stretched fill window
        while cold shards keep the base flush latency."""
        return (self.config.batching.timeout_scale_max > 1.0
                and self._shard_classifier is not None)

    def _on_batch_timeout(self) -> None:
        if not self.is_primary or self._view_changing:
            return
        base = self.config.timers.batch_timeout_ms
        if self._per_shard_timeouts:
            # Flush full bundles everywhere, but partial bundles only on the
            # shards whose own fill window has expired -- a hot shard's
            # stretched window is still running, so its partial bundle keeps
            # gathering while cold shards flush at the base latency.
            self._drain_bundles(full_only=True)
            for shard in self.batcher.due_shards(self.now, base):
                if self._can_start(self.next_seq, shard=shard):
                    self._make_batch(shard=shard)
            if self._has_pending_work():
                deadline = self.batcher.next_flush_deadline(base)
                delay = base if deadline is None else min(
                    max(deadline - self.now, 0.05 * base), base)
                self._batch_timer = self.set_timer(
                    delay, self._on_batch_timeout,
                    label=f"{self.node_id}:batch-timeout")
            return
        self._drain_bundles(full_only=False)
        if self._has_pending_work():
            # Pipeline is full: try again shortly.
            self._batch_timer = self.set_timer(
                base,
                self._on_batch_timeout,
                label=f"{self.node_id}:batch-timeout",
            )

    def _can_start(self, seq: int, shard=ANY_SHARD) -> bool:
        """Watermark and pipeline back-pressure check for a new sequence number.

        ``shard`` is the candidate bundle's queue key (per-shard batching
        keeps single-shard queues, so it is also the only shard the bundle
        touches).  With per-shard pipelining the bundle is admitted when
        that shard is within its own ``per_shard_depth`` window -- the
        global contiguous answered floor is not consulted, so one slow
        shard's unanswered batches never gate another shard's admission.
        The agreement log's ``[h, h + L]`` watermark window still bounds
        the log in both modes.
        """
        if seq > self.log.high_watermark:
            return False
        if (self._per_shard_admission and shard is not ANY_SHARD
                and shard is not None):
            depth = self.config.pipeline.per_shard_depth
            return self._shard_in_flight(shard) < depth
        ready = self.local.highest_ready_seq()
        floor = ready if ready is not None else self.log.last_delivered_seq
        return seq <= floor + self.config.pipeline_depth

    def _prune_answered(self) -> None:
        """Drop in-flight tracking for answered batches, sampling their
        order-to-reply round trip into the gather-window EWMA.

        Memoised per simulator event: answers only arrive through message
        events, so within one callback the in-flight set can only grow
        (new proposals are unanswered by construction) and one scan
        suffices no matter how many admission checks the pass makes.
        """
        stamp = self.scheduler.events_processed
        if stamp == self._prune_stamp:
            return
        self._prune_stamp = stamp
        ready = self.local.highest_ready_seq()
        floor = ready if ready is not None else self.log.last_delivered_seq
        for seq in [s for s in self._inflight_batch_sizes
                    if s <= floor or self.local.seq_answered(s)]:
            del self._inflight_batch_sizes[seq]
            self._inflight_shard_requests.pop(seq, None)
            sent_at = self._batch_sent_at.pop(seq, None)
            if sent_at is not None:
                sample = self.now - sent_at
                self._rtt_ewma = sample if self._rtt_ewma is None else (
                    (1.0 - _RTT_ALPHA) * self._rtt_ewma + _RTT_ALPHA * sample)

    def _gather_window(self) -> float:
        """The idle-gather (group-commit debounce) window.

        With ``PipelineConfig.rtt_gather`` the window tracks the measured
        commit round trip -- long enough to cover the reply-to-resubmission
        turnaround of closed-loop clients, short enough not to idle a fast
        deployment -- instead of the static ``BatchingConfig.gather_ms``.
        """
        if self.config.pipeline.rtt_gather and self._rtt_ewma is not None:
            return min(max(_RTT_GATHER_FRACTION * self._rtt_ewma, _MIN_GATHER_MS),
                       self.config.timers.batch_timeout_ms)
        return self.config.batching.gather_ms

    def _requests_in_flight(self) -> int:
        """Requests assigned a sequence number but not yet answered by
        execution -- the pipeline-congestion signal for adaptive bundle
        sizing (the demand one bundle could have absorbed)."""
        self._prune_answered()
        return sum(self._inflight_batch_sizes.values())

    def _batches_in_flight(self) -> int:
        """Batches assigned a sequence number but not yet answered."""
        self._prune_answered()
        return len(self._inflight_batch_sizes)

    def _shard_in_flight(self, shard: int) -> int:
        """Batches in flight that touch ``shard``: own proposals not yet
        answered, cross-checked against the router queue's released-but-
        unanswered count (which also covers batches proposed by an earlier
        primary)."""
        self._prune_answered()
        own = sum(1 for by_shard in self._inflight_shard_requests.values()
                  if shard in by_shard)
        return max(own, self.local.shard_outstanding(shard))

    def _shard_requests_in_flight(self, shard: int) -> int:
        """Requests in flight owned by ``shard`` (its bundle controller's
        congestion signal)."""
        self._prune_answered()
        return sum(by_shard.get(shard, 0)
                   for by_shard in self._inflight_shard_requests.values())

    def _make_batch(self, shard=ANY_SHARD) -> None:
        if shard is not ANY_SHARD and shard is not None:
            in_flight = self._shard_requests_in_flight(shard)
        else:
            in_flight = self._requests_in_flight()
        requests = self.batcher.take(in_flight=in_flight, shard=shard,
                                     now=self.now)
        if not requests:
            return
        # Any take ends the current idle-gather episode; the next gather
        # starts a fresh batch-timeout bound (leaving the old deadline in
        # place would shrink later gather windows to zero once it passed).
        self._gather_deadline = None
        seq = self._order_batch(requests)
        if (self._shard_classifier is not None and shard is not ANY_SHARD
                and shard is not None):
            # Per-shard queues are single-shard: the queue key is the owner.
            self._inflight_shard_requests[seq] = {shard: len(requests)}

    def propose_map_change(self, change: ConfigOperation) -> bool:
        """Order a partition-map change through the agreement log.

        The change rides the normal agreement path as a single-certificate
        batch signed by this primary; its sequence number is the epoch cut.
        Admission bypasses the per-shard pipeline windows (the cut must not
        queue behind the very hot shard it is trying to relieve) but still
        respects the log's ``[h, h + L]`` watermark window, and at most one
        config operation may be in flight at a time -- a second concurrent
        cut would deterministically no-op anyway (its parent epoch goes
        stale), so proposing it would burn a sequence number for nothing.
        """
        if not self.is_primary or self._view_changing:
            return False
        if self.log.has_pending_config_op():
            return False
        if self.next_seq > self.log.high_watermark:
            return False
        certificate = self.crypto.new_certificate(
            change,
            AuthenticationScheme.SIGNATURE
            if self.config.authentication is AuthenticationScheme.SIGNATURE
            else AuthenticationScheme.MAC,
            self.cert_verifiers)
        seq = self._order_batch([certificate])
        self.log.note_config_op(self.view, seq)
        return True

    def _order_batch(self, requests: List[Certificate]) -> int:
        """Assign the next sequence number to ``requests`` and pre-prepare it."""
        seq = self.next_seq
        self.next_seq += 1
        self._inflight_batch_sizes[seq] = len(requests)
        self._batch_sent_at[seq] = self.now
        self._h_batch_size.observe(len(requests))
        if self.tracing:
            self._trace_batch(requests, "order")
        batch_digest = self._batch_digest(requests)
        nondet = self.nondet.propose(self.now, seed=batch_digest)
        pre_prepare = PrePrepare(view=self.view, seq=seq, batch_digest=batch_digest,
                                 requests=tuple(requests), nondet=nondet,
                                 primary=self.node_id)
        entry = self.log.entry(self.view, seq)
        entry.pre_prepare = pre_prepare
        self.multicast(self.agreement_ids, pre_prepare)
        # The primary's pre-prepare counts as its prepare.
        self._try_prepared(entry)
        return seq

    def _trace_batch(self, requests, event: str) -> None:
        """Record a span event for every client request of one batch."""
        for certificate in requests:
            request = certificate.payload
            if isinstance(request, ClientRequest):
                self.trace_event(
                    request_trace_id(request.client, request.timestamp), event)

    def _batch_digest(self, requests: List[Certificate]) -> bytes:
        request_digests = [self.crypto.payload_digest(cert.payload) for cert in requests]
        return self.crypto.digest({"batch": request_digests})

    # ------------------------------------------------------------------ #
    # Backups: PRE-PREPARE and PREPARE.
    # ------------------------------------------------------------------ #

    def handle_pre_prepare(self, sender: NodeId, message: PrePrepare) -> None:
        if message.view != self.view or self._view_changing:
            return
        if sender != self.primary_of(self.view) or message.primary != sender:
            return
        if not self.log.in_watermarks(message.seq):
            return
        entry = self.log.entry(self.view, message.seq)
        if entry.pre_prepare is not None:
            if entry.pre_prepare.batch_digest != message.batch_digest:
                # Equivocating primary: trigger a view change.
                self.start_view_change(self.next_view_target(self.view))
            return
        if not self._validate_batch(message):
            return
        entry.pre_prepare = message
        if self._is_config_batch(message.requests):
            entry.config_op = True
        elif (len(message.requests) == 1 and
              self._probe_cross_shard(message.requests[0].payload) is not None):
            entry.cross_shard = True
        self.nondet.accept(message.nondet)
        prepare = Prepare(view=self.view, seq=message.seq,
                          batch_digest=message.batch_digest, replica=self.node_id)
        entry.prepares[self.node_id] = prepare
        self.multicast(self.agreement_ids, prepare)
        self._try_prepared(entry)

    def _validate_batch(self, message: PrePrepare) -> bool:
        """Check request authenticity, digest binding, and nondet sanity."""
        if not message.requests:
            return False
        if self._is_config_batch(message.requests):
            return self._validate_config_batch(message)
        for certificate in message.requests:
            request = certificate.payload
            if not isinstance(request, ClientRequest):
                return False
            if request.client not in self.client_ids:
                return False
            if not self.crypto.verify_certificate(certificate, 1, [request.client]):
                return False
        if self._batch_digest(list(message.requests)) != message.batch_digest:
            return False
        if not self.nondet.sanity_check(message.nondet, self.now):
            return False
        # A cross-shard request inside a mixed bundle is NOT rejected here:
        # classification depends on the partition-map epoch, and a backup
        # whose router lags one cut behind the primary would refuse a
        # correct proposal.  The release-time router handles it instead --
        # judged at the deterministic release epoch, such a request is
        # excluded from routing and ownership everywhere, so it is never
        # executed against partial state and the client's retransmission
        # re-orders it as a proper marker.
        return True

    @staticmethod
    def _is_config_batch(requests: Tuple[Certificate, ...]) -> bool:
        """Whether a batch carries a config operation (exactly one cert
        whose payload is a :class:`ConfigOperation`; a config op smuggled
        into a mixed batch is rejected outright -- the cut semantics need
        the operation alone at its sequence number)."""
        if any(isinstance(cert.payload, ConfigOperation) for cert in requests):
            return (len(requests) == 1
                    and isinstance(requests[0].payload, ConfigOperation))
        return False

    def _validate_config_batch(self, message: PrePrepare) -> bool:
        """Validate a config-operation (map-change) batch.

        Structural checks only: the certificate must be signed by the
        proposing primary and bound into the batch digest.  *Semantic*
        validity -- does the change still apply to the current map? -- is
        deliberately deferred to the cut (release) point, where every
        correct node evaluates it at the same position in the agreed order;
        judging it here against each backup's possibly-lagging epoch would
        let timing decide what must be deterministic.
        """
        certificate = message.requests[0]
        if not self.crypto.verify_certificate(certificate, 1, [message.primary]):
            return False
        if self._batch_digest(list(message.requests)) != message.batch_digest:
            return False
        if not self.nondet.sanity_check(message.nondet, self.now):
            return False
        return True

    def handle_prepare(self, sender: NodeId, message: Prepare) -> None:
        if message.view != self.view or self._view_changing:
            return
        if sender != message.replica or sender not in self.agreement_ids:
            return
        if not self.log.in_watermarks(message.seq):
            return
        entry = self.log.entry(self.view, message.seq)
        entry.prepares[sender] = message
        self._try_prepared(entry)

    def _try_prepared(self, entry: LogEntry) -> None:
        if entry.prepared or entry.pre_prepare is None:
            return
        digest = entry.pre_prepare.batch_digest
        # The pre-prepare counts as the primary's prepare; we need 2f matching
        # prepares from other replicas (our own included when we are a backup).
        others = sum(1 for replica, prepare in entry.prepares.items()
                     if prepare.batch_digest == digest
                     and replica != entry.pre_prepare.primary)
        if others < 2 * self.f:
            return
        entry.prepared = True
        body = self._cert_body(entry)
        authenticator = self._make_cert_authenticator(body)
        commit = CommitMsg(view=entry.view, seq=entry.seq, batch_digest=digest,
                           replica=self.node_id, cert_authenticator=authenticator)
        entry.commits[self.node_id] = commit
        entry.commit_authenticators[self.node_id] = authenticator
        self.multicast(self.agreement_ids, commit)
        self._try_committed(entry)

    def _cert_body(self, entry: LogEntry) -> AgreementCertBody:
        assert entry.pre_prepare is not None
        return AgreementCertBody(view=entry.view, seq=entry.seq,
                                 batch_digest=entry.pre_prepare.batch_digest,
                                 nondet=entry.pre_prepare.nondet)

    def _make_cert_authenticator(self, body: AgreementCertBody):
        """Authenticator over the agreement-certificate body.

        Agreement certificates always use MAC vectors or signatures (threshold
        signatures are reserved for reply certificates); MAC vectors address
        every node that may need to verify the certificate.
        """
        if self.config.authentication is AuthenticationScheme.SIGNATURE:
            return self.crypto.sign(body)
        return self.crypto.mac_authenticator(body, self.cert_verifiers)

    # ------------------------------------------------------------------ #
    # COMMIT and delivery.
    # ------------------------------------------------------------------ #

    def handle_commit(self, sender: NodeId, message: CommitMsg) -> None:
        if message.view != self.view or self._view_changing:
            return
        if sender != message.replica or sender not in self.agreement_ids:
            return
        if not self.log.in_watermarks(message.seq):
            return
        entry = self.log.entry(self.view, message.seq)
        entry.commits[sender] = message
        if message.cert_authenticator is not None:
            entry.commit_authenticators[sender] = message.cert_authenticator
        self._try_committed(entry)

    def _try_committed(self, entry: LogEntry) -> None:
        if entry.committed or not entry.prepared or entry.pre_prepare is None:
            return
        digest = entry.pre_prepare.batch_digest
        if entry.commit_count(digest) < 2 * self.f + 1:
            return
        entry.committed = True
        if self.tracing and entry.pre_prepare is not None:
            self._trace_batch(entry.pre_prepare.requests, "commit")
        sent_at = self._batch_sent_at.get(entry.seq)
        if sent_at is not None:
            self._h_agree_ms.observe(self.now - sent_at)
        if self.config.pipeline.ooo_shard_delivery:
            self._stage_committed(entry)
        self._deliver_in_order()

    def _stage_committed(self, entry: LogEntry) -> None:
        """Hand a just-committed batch to the local executor's out-of-order
        staging buffer (``PipelineConfig.ooo_shard_delivery``).

        The content of a locally *committed* entry is fixed forever (any
        later view must preserve it), so the executor may learn it even
        while an earlier sequence number is still gathering commit votes;
        the shard router buffers the gap and releases each shard's parts
        along its per-shard frontier.  Uncommitted entries are never staged
        -- their content could still change across a view change.
        """
        stage = getattr(self.local, "stage_batch", None)
        if stage is None or entry.staged or entry.pre_prepare is None:
            return
        entry.staged = True
        stage(seq=entry.seq, view=entry.view,
              request_certificates=entry.pre_prepare.requests,
              agreement_certificate=self._assemble_certificate(entry),
              nondet=entry.pre_prepare.nondet)

    def _deliver_in_order(self) -> None:
        """Deliver committed batches to the local state machine in order."""
        while True:
            next_seq = self.log.last_delivered_seq + 1
            entry = self._committed_entry(next_seq)
            if entry is None:
                return
            self._deliver(entry)

    def _committed_entry(self, seq: int) -> Optional[LogEntry]:
        for view in range(self.view, -1, -1):
            entry = self.log.existing_entry(view, seq)
            if entry is not None and entry.committed and not entry.delivered:
                return entry
        return None

    def _assemble_certificate(self, entry: LogEntry) -> Certificate:
        """Assemble the agreement certificate from the commit authenticators."""
        certificate = Certificate(
            payload=self._cert_body(entry),
            scheme=(AuthenticationScheme.SIGNATURE
                    if self.config.authentication is AuthenticationScheme.SIGNATURE
                    else AuthenticationScheme.MAC),
        )
        for replica, authenticator in entry.commit_authenticators.items():
            if authenticator.scheme is certificate.scheme:
                certificate.authenticators[replica] = authenticator
        return certificate

    def _deliver(self, entry: LogEntry) -> None:
        assert entry.pre_prepare is not None
        # Entries already handed over at commit time (out-of-order staging)
        # skip the hand-off: the executor has the batch, and reassembling
        # the certificate here would be pure waste.
        if not entry.staged:
            self.local.execute_batch(
                seq=entry.seq, view=entry.view,
                request_certificates=entry.pre_prepare.requests,
                agreement_certificate=self._assemble_certificate(entry),
                nondet=entry.pre_prepare.nondet,
            )
        entry.delivered = True
        self.log.last_delivered_seq = entry.seq
        self.batches_delivered += 1
        self.requests_delivered += len(entry.pre_prepare.requests)
        self._c_batches.inc()
        self._c_requests.inc(len(entry.pre_prepare.requests))
        for request_cert in entry.pre_prepare.requests:
            request = request_cert.payload
            if not isinstance(request, ClientRequest):
                continue  # config operations carry no client bookkeeping
            previous = self.ordered_timestamp.get(request.client, -1)
            self.ordered_timestamp[request.client] = max(previous, request.timestamp)
            self.batcher.remove(request.client, request.timestamp)
            self._drop_cross_shard_pending(request.client, request.timestamp)
            self._clear_request_deadline(request.client, request.timestamp)
        if self.log.is_checkpoint_seq(entry.seq):
            self._emit_checkpoint(entry.seq)
        if self.is_primary:
            self.maybe_make_batch()

    # ------------------------------------------------------------------ #
    # Checkpoints.
    # ------------------------------------------------------------------ #

    def _emit_checkpoint(self, seq: int) -> None:
        sync_state = self.local.checkpoint_sync_state(seq)
        digest = self.local.checkpoint_digest(seq)
        message = AgreementCheckpoint(seq=seq, state_digest=digest,
                                      replica=self.node_id,
                                      sync_state=sync_state)
        self.log.add_checkpoint_vote(seq, self.node_id, digest)
        self._checkpoint_sync_states[(seq, digest)] = sync_state
        self.multicast(self.agreement_ids, message)
        self._try_stable(seq, digest)

    def handle_checkpoint(self, sender: NodeId, message: AgreementCheckpoint) -> None:
        if sender != message.replica or sender not in self.agreement_ids:
            return
        key = (message.seq, message.state_digest)
        if key not in self._checkpoint_sync_states and message.seq > self.log.stable_seq:
            # Keep the vote's transferable state only if it re-derives the
            # claimed digest: a Byzantine replica can echo the certified
            # digest but cannot forge frontier state that hashes to it.
            expected = self.local.sync_state_digest(message.seq, message.sync_state)
            if expected == message.state_digest:
                self._checkpoint_sync_states[key] = message.sync_state
        self.log.add_checkpoint_vote(message.seq, sender, message.state_digest)
        self._try_stable(message.seq, message.state_digest)

    def _try_stable(self, seq: int, digest: bytes) -> None:
        if seq <= self.log.stable_seq:
            return
        if self.log.checkpoint_support(seq, digest) >= 2 * self.f + 1:
            self.log.mark_stable(seq)
            if seq > self.log.last_delivered_seq:
                self._sync_to_checkpoint(seq, digest)
            self.local.on_stable_checkpoint(seq)
            self._checkpoint_sync_states = {
                key: state for key, state in self._checkpoint_sync_states.items()
                if key[0] > seq
            }
            self._maybe_rotate_primary()

    def _maybe_rotate_primary(self) -> None:
        """Proactive rotation: planned view change every N stable checkpoints.

        Every correct replica counts the same stable checkpoints within a
        view, so all 3f+1 reach the rotation threshold and vote for the
        same next view without any replica having to accuse the primary --
        the view change assembles exactly like a failure-driven one, but
        the outgoing primary is not marked deposed.
        """
        interval = self.config.timers.rotation_interval_checkpoints
        if interval is None or self._view_changing:
            return
        self._stable_checkpoints_in_view += 1
        if self._stable_checkpoints_in_view >= interval:
            self.planned_rotations += 1
            self.start_view_change(self.next_view_target(self.view),
                                   planned=True)

    def _sync_to_checkpoint(self, seq: int, state_digest: bytes) -> None:
        """State transfer: jump a stranded delivery frontier to a stable cut.

        A quorum certified the checkpoint at ``seq``, so every batch up to
        it committed and was answered by correct replicas; this replica
        missed some of them (an equivocating primary fed it conflicting
        pre-prepares, or it fell behind past the watermark window) and can
        no longer replay them once the quorum garbage-collected the
        entries.  Adopt the checkpoint instead: advance the delivery
        frontier, hand the local queue the digest-verified frontier state a
        checkpoint vote carried (the 2f+1 quorum contains at least f+1
        correct voters, so a verified copy always arrived), and drop armed
        request deadlines -- a genuinely starved request re-arms on the
        client's next retransmission.
        """
        self.log.last_delivered_seq = seq
        self.next_seq = max(self.next_seq, seq + 1)
        self.checkpoint_syncs += 1
        sync_state = self._checkpoint_sync_states.get((seq, state_digest), ())
        self.local.sync_to_checkpoint(seq, sync_state)
        for timer in self._request_deadlines.values():
            timer.cancel()
        self._request_deadlines.clear()

    # ------------------------------------------------------------------ #
    # View changes.
    # ------------------------------------------------------------------ #

    def start_view_change(self, new_view: int, planned: bool = False) -> None:
        """Vote to move to ``new_view`` (carrying prepared-batch evidence).

        ``planned`` marks a proactive rotation (the
        ``rotation_interval_checkpoints`` knob): the outgoing primary did
        nothing wrong, so it is not recorded as deposed and stays in the
        rotation for future views.
        """
        if new_view <= self.view and self._target_view >= new_view:
            return
        if not self._view_changing and not planned:
            # Abandoning a live view: its primary failed us (timeout,
            # censorship, or equivocation) -- skip it for a rotation.
            self._note_deposed(self.primary_of(self.view), self.view)
        previous_target = self._target_view if self._view_changing else self.view
        self._view_changing = True
        self._target_view = max(self._target_view, new_view)
        if self.tracing and self._target_view > previous_target:
            self.trace_event(f"view-change:{self._target_view}",
                             "view_change_start")
        prepared = tuple(
            PreparedProof(view=entry.view, seq=entry.seq,
                          batch_digest=entry.pre_prepare.batch_digest,
                          requests=entry.pre_prepare.requests,
                          nondet=entry.pre_prepare.nondet)
            for entry in self.log.prepared_entries_above(self.log.stable_seq)
            if entry.pre_prepare is not None and not entry.delivered
        )
        vote = ViewChange(new_view=self._target_view,
                          last_stable_seq=self.log.stable_seq,
                          prepared=prepared, replica=self.node_id,
                          planned=planned)
        self._record_view_change(self.node_id, vote)
        self.multicast(self.agreement_ids, vote)
        # Escalate if the view change itself stalls, backing off
        # exponentially so cascading view changes under a long partition
        # re-vote ever less often instead of thrashing.
        self.set_timer(self._escalation_delay_ms(),
                       lambda: self._on_view_change_timeout(self._target_view),
                       label=f"{self.node_id}:view-change-escalate")

    def _escalation_delay_ms(self) -> float:
        """Backed-off re-vote delay for the current escalation attempt."""
        timers = self.config.timers
        delay = timers.view_change_ms * (
            timers.view_change_backoff ** (self._view_change_attempts + 1))
        return min(delay, max(timers.view_change_backoff_cap_ms,
                              timers.view_change_ms))

    def _on_view_change_timeout(self, attempted_view: int) -> None:
        if self.view >= attempted_view:
            return
        # The attempted view's candidate failed to assemble a NEW-VIEW in
        # time: depose it too, and escalate past it with a longer fuse.
        self._view_change_attempts += 1
        self._note_deposed(self.primary_of(attempted_view), attempted_view)
        self.start_view_change(self.next_view_target(attempted_view))

    def handle_view_change(self, sender: NodeId, message: ViewChange) -> None:
        if sender != message.replica or sender not in self.agreement_ids:
            return
        if message.new_view <= self.view:
            return
        self._record_view_change(sender, message)
        votes = self._view_change_votes.get(message.new_view, {})
        # Join the view change once f + 1 replicas are already moving: this is
        # the standard liveness rule that prevents a slow replica from being
        # left behind.  Join a *planned* rotation as planned -- f + 1 planned
        # votes contain a correct one, so the outgoing primary did nothing
        # wrong and must not be marked deposed by laggards.
        if len(votes) >= self.f + 1 and self._target_view < message.new_view:
            planned = sum(
                1 for vote in votes.values() if vote.planned) >= self.f + 1
            self.start_view_change(message.new_view, planned=planned)
        if (self.primary_of(message.new_view) == self.node_id
                and len(votes) >= 2 * self.f + 1):
            self._send_new_view(message.new_view)

    def _record_view_change(self, sender: NodeId, message: ViewChange) -> None:
        self._view_change_votes.setdefault(message.new_view, {})[sender] = message

    def _send_new_view(self, view: int) -> None:
        if self.view >= view:
            return
        votes = self._view_change_votes.get(view, {})
        # Re-propose every prepared batch reported by any of the 2f + 1 votes,
        # keeping the highest-view evidence per sequence number.
        best: Dict[int, PreparedProof] = {}
        min_stable = 0
        for vote in votes.values():
            min_stable = max(min_stable, vote.last_stable_seq)
            for proof in vote.prepared:
                current = best.get(proof.seq)
                if current is None or proof.view > current.view:
                    best[proof.seq] = proof
        # Re-proposals start at the latest stable checkpoint among the votes
        # (PBFT's min-s) -- NOT at this primary's own delivered frontier.
        # An equivocating old primary can leave replicas stranded behind
        # holes the rest of the group long since delivered; only re-running
        # agreement from the checkpoint lets those laggards catch up, clear
        # their request deadlines, and stop escalating view changes.
        # Replicas that already delivered a re-proposed batch still vote for
        # it but skip re-execution (see _adopt_new_view_batches).
        pre_prepares = [
            PrePrepare(view=view, seq=proof.seq, batch_digest=proof.batch_digest,
                       requests=proof.requests, nondet=proof.nondet,
                       primary=self.node_id)
            for proof in (best[s] for s in sorted(best))
            if proof.seq > min_stable
        ]
        # Fill sequence holes with null batches.  A hole is a sequence number
        # no vote reported prepared: by quorum intersection it cannot have
        # committed anywhere, yet in-order delivery would wait on it forever
        # (a censoring primary that *dropped* a pre-prepare leaves exactly
        # this gap).  An empty batch is agreed through the normal three
        # phases and releases as a vacuous slot downstream.
        floor = min_stable
        for seq in range(floor + 1, max(best, default=floor)):
            if seq in best:
                continue
            digest = self._batch_digest(())
            pre_prepares.append(PrePrepare(
                view=view, seq=seq, batch_digest=digest, requests=(),
                nondet=self.nondet.propose(self.now, seed=digest),
                primary=self.node_id))
        pre_prepares = tuple(sorted(pre_prepares, key=lambda p: p.seq))
        new_view = NewView(view=view,
                           view_change_replicas=tuple(sorted(r.name for r in votes)),
                           pre_prepares=pre_prepares, primary=self.node_id)
        self._enter_view(view)
        self.multicast(self.agreement_ids, new_view)
        self._adopt_new_view_batches(pre_prepares)
        self.next_seq = max(self.next_seq, self.log.last_delivered_seq + 1,
                            max((p.seq for p in pre_prepares), default=0) + 1)
        # Give the NEW-VIEW a head start so backups are already in the new
        # view when the first fresh PRE-PREPARE reaches them.
        self.set_timer(2.0, self.maybe_make_batch,
                       label=f"{self.node_id}:new-view-batch")

    def handle_new_view(self, sender: NodeId, message: NewView) -> None:
        if message.view <= self.view:
            return
        if sender != self.primary_of(message.view) or message.primary != sender:
            return
        self._enter_view(message.view)
        self._adopt_new_view_batches(message.pre_prepares)

    def _enter_view(self, view: int) -> None:
        if self.tracing:
            self.trace_event(f"view-change:{view}", "view_change_end")
        self.view = view
        self._view_changing = False
        self._target_view = view
        self._view_change_attempts = 0
        self._stable_checkpoints_in_view = 0
        self.view_changes_completed += 1
        self.next_seq = max(self.next_seq, self.log.last_delivered_seq + 1)
        # Proposals of the old view may have been discarded by the view
        # change; keeping them in the in-flight tables would count phantom
        # batches against the pipeline windows forever.  The router queue's
        # own released-but-unanswered counts still back-pressure whatever
        # genuinely survived.
        self._inflight_batch_sizes.clear()
        self._inflight_shard_requests.clear()
        self._batch_sent_at.clear()
        # Requests that were pending when the view changed must be re-ordered
        # in the new view; the primary picks them up from the batcher and the
        # backups re-arm their deadlines so that a still-faulty primary (or a
        # lost pre-prepare) triggers the next view change.
        for certificate in (self.batcher.pending_requests()
                            + self._cross_shard_pending):
            request = certificate.payload
            if isinstance(request, ClientRequest):
                self._arm_request_deadline(request)
        if self.is_primary:
            self.set_timer(2.0, self.maybe_make_batch,
                           label=f"{self.node_id}:enter-view-batch")

    def _adopt_new_view_batches(self, pre_prepares: Tuple[PrePrepare, ...]) -> None:
        for pre_prepare in pre_prepares:
            entry = self.log.entry(pre_prepare.view, pre_prepare.seq)
            if pre_prepare.seq <= self.log.last_delivered_seq:
                # Already delivered here: vote so laggards can assemble the
                # prepare/commit quorums they need to catch up, but mark the
                # slot consumed so commit never re-executes it locally.
                entry.staged = True
                entry.delivered = True
            if entry.pre_prepare is None:
                entry.pre_prepare = pre_prepare
            if self._is_config_batch(pre_prepare.requests):
                entry.config_op = True
            if self.node_id != pre_prepare.primary:
                prepare = Prepare(view=pre_prepare.view, seq=pre_prepare.seq,
                                  batch_digest=pre_prepare.batch_digest,
                                  replica=self.node_id)
                entry.prepares[self.node_id] = prepare
                self.multicast(self.agreement_ids, prepare)
            self._try_prepared(entry)
