"""Request batching ("bundles").

The BASE library bundles requests when load is high and runs agreement once
per bundle; the paper additionally signs reply bundles with a single
threshold signature so that the expensive public-key operation amortises
across all the replies in the bundle (Section 5.3, Figure 5).

The :class:`Batcher` holds request certificates that have not yet been
assigned to a batch.  The primary drains it with :meth:`take` when either a
full bundle is available or the batch timeout expires with at least one
pending request.  Duplicate requests (same client and timestamp) are folded.

The bundle size is supplied by a controller: :class:`StaticBundleController`
reproduces the paper's fixed ``bundle_size`` (swept by Figure 5), and
:class:`AdaptiveBundleController` replaces it with AIMD on queue depth --
grow the bundle additively while draining a batch leaves backlog behind,
shrink it multiplicatively when a batch-timeout fire finds less than a full
bundle waiting.  The controller only reacts to take-time queue depth, which
is a deterministic function of the simulated trajectory, so adaptive runs
are exactly reproducible for a given seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import BatchingConfig, SystemConfig
from ..crypto.certificate import Certificate
from ..messages.request import ClientRequest
from ..util.ids import NodeId


class StaticBundleController:
    """Fixed bundle size (the paper's ``bundle_size`` configuration)."""

    def __init__(self, bundle_size: int) -> None:
        if bundle_size < 1:
            raise ValueError("bundle_size must be at least 1")
        self._size = bundle_size

    @property
    def current(self) -> int:
        return self._size

    def on_take(self, backlog_before: int, taken: int, in_flight: int = 0) -> None:
        return None


class AdaptiveBundleController:
    """AIMD bundle sizing on queue depth.

    The backlog a saturated system builds up lives in two queues: requests
    still waiting in the batcher, and requests already ordered but not yet
    answered by the execution cluster (with closed-loop clients the batcher
    drains on every arrival, so the pipeline is where congestion shows).
    The controller watches both at every take; ``in_flight`` is the number
    of *requests* ordered but unanswered at take time, so
    ``in_flight + taken`` is the concurrent demand the system is carrying --
    the bandwidth-delay product the bundle size should track.

    * **Additive increase**: if draining a bundle leaves requests queued
      (``backlog_before - taken > 0``), or the concurrent demand exceeds
      the current bundle size, the next bundle grows by ``increase``
      (amortising agreement and reply certificates over more requests), up
      to ``max_bundle``.  Growth stops exactly when one bundle can absorb
      everything in flight -- more waiting would add latency for nothing.
    * **Multiplicative decrease**: if the flush timer fires with less than
      *half* a bundle waiting while the pipeline is idle, the load is
      genuinely light and the size shrinks by ``decrease_factor`` toward
      ``min_bundle``.  (A nearly-full timer-forced take is the normal
      gathering step of a saturated closed loop; shrinking on it would
      collapse the bundle just when amortisation pays most.)

    The batch timeout itself is untouched, so a pending request is never
    held longer than ``timers.batch_timeout_ms`` regardless of bundle size;
    and at ``min_bundle == 1`` under light load every take is a full bundle
    taken at arrival time, so the timeout never even starts to run.
    """

    def __init__(self, config: BatchingConfig) -> None:
        config.validate()
        self.config = config
        self._size = float(config.min_bundle)
        self.increases = 0
        self.decreases = 0

    @property
    def current(self) -> int:
        return max(self.config.min_bundle, int(self._size))

    def on_take(self, backlog_before: int, taken: int, in_flight: int = 0) -> None:
        congested = in_flight >= self.config.congestion_requests
        if backlog_before - taken > 0 or in_flight + taken > self.current:
            self._size = min(float(self.config.max_bundle),
                             self._size + self.config.increase)
            self.increases += 1
        elif taken * 2 <= self.current and not congested:
            self._size = max(float(self.config.min_bundle),
                             self._size * self.config.decrease_factor)
            self.decreases += 1


def make_bundle_controller(config: SystemConfig):
    """Build the bundle-size controller selected by ``config.batching``."""
    if config.batching.mode == "adaptive":
        return AdaptiveBundleController(config.batching)
    return StaticBundleController(config.bundle_size)


class Batcher:
    """FIFO of pending request certificates with duplicate suppression."""

    def __init__(self, bundle_size: int = 1, controller=None) -> None:
        #: the controller is the single owner of the bundle size;
        #: ``bundle_size`` only seeds the default static controller.
        self.controller = controller or StaticBundleController(bundle_size)
        self._queue: List[Certificate] = []
        self._keys: Dict[Tuple[NodeId, int], int] = {}
        self.total_enqueued = 0
        self.total_batches = 0
        self.largest_batch = 0

    @property
    def bundle_size(self) -> int:
        """The controller's current bundle size."""
        return self.controller.current

    def __len__(self) -> int:
        return len(self._queue)

    @staticmethod
    def _key(certificate: Certificate) -> Tuple[NodeId, int]:
        request: ClientRequest = certificate.payload
        return (request.client, request.timestamp)

    def add(self, certificate: Certificate) -> bool:
        """Enqueue a request certificate; returns False if it was a duplicate."""
        key = self._key(certificate)
        if key in self._keys:
            return False
        self._keys[key] = len(self._queue)
        self._queue.append(certificate)
        self.total_enqueued += 1
        return True

    def contains(self, client: NodeId, timestamp: int) -> bool:
        return (client, timestamp) in self._keys

    def has_full_bundle(self) -> bool:
        return len(self._queue) >= self.bundle_size

    def has_work(self) -> bool:
        return bool(self._queue)

    def take(self, limit: Optional[int] = None,
             in_flight: int = 0) -> List[Certificate]:
        """Remove and return up to ``limit`` (default ``bundle_size``) requests.

        ``in_flight`` is the number of batches the caller has sent but not
        yet seen answered -- the congestion signal the adaptive controller
        uses alongside the queue depth.
        """
        backlog = len(self._queue)
        count = min(backlog, limit if limit is not None else self.bundle_size)
        if count == 0:
            return []
        batch = self._queue[:count]
        self._queue = self._queue[count:]
        self._keys = {self._key(cert): i for i, cert in enumerate(self._queue)}
        self.total_batches += 1
        self.largest_batch = max(self.largest_batch, count)
        self.controller.on_take(backlog, count, in_flight)
        return batch

    def remove(self, client: NodeId, timestamp: int) -> None:
        """Drop a pending request (e.g. because it already committed elsewhere)."""
        key = (client, timestamp)
        if key not in self._keys:
            return
        self._queue = [cert for cert in self._queue if self._key(cert) != key]
        self._keys = {self._key(cert): i for i, cert in enumerate(self._queue)}

    def pending_requests(self) -> List[Certificate]:
        """The request certificates currently waiting to be ordered."""
        return list(self._queue)

    def average_batch_size(self) -> float:
        """Mean requests per batch taken so far (1.0 if nothing taken yet)."""
        if self.total_batches == 0:
            return 1.0
        return self.total_enqueued / self.total_batches
