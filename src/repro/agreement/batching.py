"""Request batching ("bundles").

The BASE library bundles requests when load is high and runs agreement once
per bundle; the paper additionally signs reply bundles with a single
threshold signature so that the expensive public-key operation amortises
across all the replies in the bundle (Section 5.3, Figure 5).

The :class:`Batcher` holds request certificates that have not yet been
assigned to a batch.  The primary drains it with :meth:`take` when either a
full bundle is available or the batch timeout expires with at least one
pending request.  Duplicate requests (same client and timestamp) are folded.

The bundle size is supplied by a controller: :class:`StaticBundleController`
reproduces the paper's fixed ``bundle_size`` (swept by Figure 5), and
:class:`AdaptiveBundleController` replaces it with AIMD on queue depth --
grow the bundle additively while draining a batch leaves backlog behind,
shrink it multiplicatively when a batch-timeout fire finds less than a full
bundle waiting.  The controller only reacts to take-time queue depth, which
is a deterministic function of the simulated trajectory, so adaptive runs
are exactly reproducible for a given seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import BatchingConfig, SystemConfig
from ..crypto.certificate import Certificate
from ..messages.request import ClientRequest
from ..obs import NULL_REGISTRY
from ..util.ids import NodeId

#: bundle sizes are small integers; power-of-two buckets resolve them exactly
#: up to the default ``max_bundle``
_BUNDLE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class StaticBundleController:
    """Fixed bundle size (the paper's ``bundle_size`` configuration)."""

    def __init__(self, bundle_size: int) -> None:
        if bundle_size < 1:
            raise ValueError("bundle_size must be at least 1")
        self._size = bundle_size

    @property
    def current(self) -> int:
        return self._size

    def on_take(self, backlog_before: int, taken: int, in_flight: int = 0) -> None:
        return None

    def fill_timeout_scale(self) -> float:
        """Static bundles keep the base batch-timeout fill window."""
        return 1.0


class AdaptiveBundleController:
    """AIMD bundle sizing on queue depth.

    The backlog a saturated system builds up lives in two queues: requests
    still waiting in the batcher, and requests already ordered but not yet
    answered by the execution cluster (with closed-loop clients the batcher
    drains on every arrival, so the pipeline is where congestion shows).
    The controller watches both at every take; ``in_flight`` is the number
    of *requests* ordered but unanswered at take time, so
    ``in_flight + taken`` is the concurrent demand the system is carrying --
    the bandwidth-delay product the bundle size should track.

    * **Additive increase**: if draining a bundle leaves requests queued
      (``backlog_before - taken > 0``), or the concurrent demand exceeds
      the current bundle size, the next bundle grows by ``increase``
      (amortising agreement and reply certificates over more requests), up
      to ``max_bundle``.  Growth stops exactly when one bundle can absorb
      everything in flight -- more waiting would add latency for nothing.
    * **Multiplicative decrease**: if the flush timer fires with less than
      *half* a bundle waiting while the pipeline is idle, the load is
      genuinely light and the size shrinks by ``decrease_factor`` toward
      ``min_bundle``.  (A nearly-full timer-forced take is the normal
      gathering step of a saturated closed loop; shrinking on it would
      collapse the bundle just when amortisation pays most.)

    The batch timeout itself is untouched, so a pending request is never
    held longer than ``timers.batch_timeout_ms`` regardless of bundle size;
    and at ``min_bundle == 1`` under light load every take is a full bundle
    taken at arrival time, so the timeout never even starts to run.
    """

    def __init__(self, config: BatchingConfig) -> None:
        config.validate()
        self.config = config
        self._size = float(config.min_bundle)
        self.increases = 0
        self.decreases = 0

    @property
    def current(self) -> int:
        return max(self.config.min_bundle, int(self._size))

    def on_take(self, backlog_before: int, taken: int, in_flight: int = 0) -> None:
        congested = in_flight >= self.config.congestion_requests
        if backlog_before - taken > 0 or in_flight + taken > self.current:
            self._size = min(float(self.config.max_bundle),
                             self._size + self.config.increase)
            self.increases += 1
        elif taken * 2 <= self.current and not congested:
            self._size = max(float(self.config.min_bundle),
                             self._size * self.config.decrease_factor)
            self.decreases += 1

    def fill_timeout_scale(self) -> float:
        """Per-shard batch timeouts: stretch a congested shard's fill window.

        The grown bundle size *is* the controller's memory of sustained
        backlog (AIMD only grows it while takes leave work behind), so the
        partial-bundle flush window stretches proportionally -- a hot shard
        under deep backlog waits up to ``timeout_scale_max`` times the base
        window for a fuller, better-amortised bundle, while a cold shard
        (bundle pinned at the minimum) keeps the base flush latency.
        """
        if self.config.timeout_scale_max <= 1.0:
            return 1.0
        heat = self.current / max(1, self.config.min_bundle)
        return min(self.config.timeout_scale_max, max(1.0, heat))


def make_bundle_controller(config: SystemConfig):
    """Build the bundle-size controller selected by ``config.batching``."""
    if config.batching.mode == "adaptive":
        return AdaptiveBundleController(config.batching)
    return StaticBundleController(config.bundle_size)


#: sentinel for "whichever queue is next in FIFO order" (``None`` is a real
#: queue key: the unclassified queue)
ANY_SHARD = object()


class Batcher:
    """FIFO of pending request certificates with duplicate suppression.

    Without a ``classifier`` the batcher is a single FIFO governed by one
    controller, exactly as in the unsharded architecture.  With a
    ``classifier`` (request certificate -> destination shard) it keeps one
    FIFO *per shard*, so the primary can form single-shard bundles and admit
    them against per-shard pipeline windows.

    **Per-shard bundle controllers.**  Each shard's bundle size is owned by
    its own controller, created on demand from ``controller_factory`` the
    first time that shard shows congestion (backlog left behind a take, or
    more of its requests in flight than one bundle absorbs).  Until then the
    shard is governed by the *shared low-load controller* (``controller``),
    which -- because congested takes are diverted to the per-shard instance
    before they can grow it -- stays pinned at the minimum bundle size.  A
    hot shard therefore grows its own bundles to amortise agreement and
    reply certificates, while a cold shard keeps flushing single-request
    bundles at arrival time: one shard's load never inflates another
    shard's batching latency.
    """

    def __init__(self, bundle_size: int = 1, controller=None,
                 classifier: Optional[Callable[[Certificate], int]] = None,
                 controller_factory: Optional[Callable[[], object]] = None,
                 demote_idle_ms: Optional[float] = None,
                 metrics=None) -> None:
        #: the shared (low-load) controller; ``bundle_size`` only seeds the
        #: default static controller.
        self.controller = controller or StaticBundleController(bundle_size)
        #: observability instruments (no-ops unless the owning replica hands
        #: over its live registry); cached so a take costs three no-op calls
        #: when metrics are disabled
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._h_bundle_size = metrics.histogram("batch.bundle_size",
                                                bounds=_BUNDLE_BUCKETS)
        self._h_wait_ms = metrics.histogram("batch.wait_ms")
        self._g_window = metrics.gauge("batch.bundle_window")
        metrics.register_probe("batch.totals", lambda: {
            "total_enqueued": self.total_enqueued,
            "total_batches": self.total_batches,
            "largest_batch": self.largest_batch,
            "demotions": self.demotions,
            "shard_controllers": len(self._shard_controllers),
        })
        self.classifier = classifier
        self._controller_factory = controller_factory
        #: sustained-idle horizon after which a per-shard controller is
        #: demoted back to the shared one (None = keep forever)
        self.demote_idle_ms = demote_idle_ms
        #: per-shard controllers, created lazily on first congestion
        self._shard_controllers: Dict[int, object] = {}
        #: virtual time of each shard's last add/take (demotion clock)
        self._last_active: Dict[Optional[int], float] = {}
        #: pending certificates, one FIFO per shard (key None = unclassified)
        self._queues: Dict[Optional[int], List[Certificate]] = {}
        #: (client, timestamp) -> owning queue key, for dedupe and removal
        self._keys: Dict[Tuple[NodeId, int], Optional[int]] = {}
        #: (client, timestamp) -> global arrival index (cross-shard FIFO)
        self._arrival_of: Dict[Tuple[NodeId, int], int] = {}
        #: (client, timestamp) -> arrival virtual time (per-shard flush clocks)
        self._arrival_time: Dict[Tuple[NodeId, int], float] = {}
        self._arrivals = 0
        self.total_enqueued = 0
        self.total_batches = 0
        self.largest_batch = 0
        self.demotions = 0

    @property
    def bundle_size(self) -> int:
        """The shared controller's current bundle size."""
        return self.controller.current

    def controller_for(self, shard: Optional[int]):
        """The controller governing ``shard`` (shared until first congestion)."""
        if shard is None:
            return self.controller
        return self._shard_controllers.get(shard, self.controller)

    def bundle_size_for(self, shard: Optional[int]) -> int:
        return self.controller_for(shard).current

    def __len__(self) -> int:
        return len(self._keys)

    @staticmethod
    def _key(certificate: Certificate) -> Tuple[NodeId, int]:
        request: ClientRequest = certificate.payload
        return (request.client, request.timestamp)

    def _shard_of(self, certificate: Certificate) -> Optional[int]:
        if self.classifier is None:
            return None
        return self.classifier(certificate)

    def _maybe_demote(self, shard: Optional[int], now: float) -> None:
        """Return a sustained-idle shard to the shared low-load controller.

        A one-time burst promotes a shard to its own AIMD controller; once
        the burst is long over, the private controller's grown bundle size
        is stale memory -- the next lone request would wait behind a bundle
        that will never fill.  Demotion forgets it: the shard re-promotes
        (from scratch) the next time it shows genuine congestion.
        """
        if self.demote_idle_ms is None or shard is None:
            return
        if shard not in self._shard_controllers:
            return
        last = self._last_active.get(shard)
        if last is not None and now - last >= self.demote_idle_ms:
            del self._shard_controllers[shard]
            self.demotions += 1

    def add(self, certificate: Certificate, now: float = 0.0) -> bool:
        """Enqueue a request certificate; returns False if it was a duplicate."""
        key = self._key(certificate)
        if key in self._keys:
            return False
        shard = self._shard_of(certificate)
        self._maybe_demote(shard, now)
        self._keys[key] = shard
        self._queues.setdefault(shard, []).append(certificate)
        self._arrival_of[key] = self._arrivals
        self._arrival_time[key] = now
        self._arrivals += 1
        self._last_active[shard] = now
        self.total_enqueued += 1
        return True

    def contains(self, client: NodeId, timestamp: int) -> bool:
        return (client, timestamp) in self._keys

    # ------------------------------------------------------------------ #
    # Queue inspection.
    # ------------------------------------------------------------------ #

    def _head_arrival(self, shard: Optional[int]) -> int:
        return self._arrival_of[self._key(self._queues[shard][0])]

    def shards(self) -> List[Optional[int]]:
        """Queue keys with pending work, oldest head request first."""
        return sorted((s for s, q in self._queues.items() if q),
                      key=self._head_arrival)

    def full_shards(self) -> List[Optional[int]]:
        """Queues holding at least one full bundle, oldest head first."""
        return [shard for shard in self.shards()
                if len(self._queues[shard]) >= self.bundle_size_for(shard)]

    def backlog(self, shard: Optional[int]) -> int:
        return len(self._queues.get(shard, ()))

    # ------------------------------------------------------------------ #
    # Per-shard flush deadlines (``BatchingConfig.timeout_scale_max``).
    # ------------------------------------------------------------------ #

    def head_arrival_ms(self, shard: Optional[int]) -> float:
        """Arrival time of the queue's oldest pending request."""
        return self._arrival_time[self._key(self._queues[shard][0])]

    def flush_deadline(self, shard: Optional[int], base_timeout_ms: float) -> float:
        """When the queue's partial bundle must be flushed: head arrival
        plus the owning controller's (possibly stretched) fill window."""
        scale = self.controller_for(shard).fill_timeout_scale()
        return self.head_arrival_ms(shard) + base_timeout_ms * scale

    def due_shards(self, now: float, base_timeout_ms: float) -> List[Optional[int]]:
        """Queues whose flush deadline has passed, oldest head first."""
        return [shard for shard in self.shards()
                if self.flush_deadline(shard, base_timeout_ms) <= now + 1e-9]

    def next_flush_deadline(self, base_timeout_ms: float) -> Optional[float]:
        """Earliest flush deadline over all pending queues (None if empty)."""
        deadlines = [self.flush_deadline(shard, base_timeout_ms)
                     for shard in self.shards()]
        return min(deadlines) if deadlines else None

    def has_full_bundle(self) -> bool:
        return bool(self.full_shards())

    def has_work(self) -> bool:
        return bool(self._keys)

    def _pick(self, shard) -> Optional[int]:
        """Resolve the ``ANY_SHARD`` sentinel to the next FIFO candidate queue."""
        if shard is not ANY_SHARD:
            return shard
        candidates = self.full_shards() or self.shards()
        return candidates[0] if candidates else None

    def peek(self, shard=ANY_SHARD, limit: Optional[int] = None) -> List[Certificate]:
        """The requests :meth:`take` would return, without removing them."""
        shard = self._pick(shard)
        queue = self._queues.get(shard)
        if not queue:
            return []
        count = min(len(queue), limit if limit is not None
                    else self.bundle_size_for(shard))
        return queue[:count]

    # ------------------------------------------------------------------ #
    # Taking bundles.
    # ------------------------------------------------------------------ #

    def take(self, limit: Optional[int] = None, in_flight: int = 0,
             shard=ANY_SHARD, now: float = 0.0) -> List[Certificate]:
        """Remove and return up to ``limit`` (default: the owning
        controller's bundle size) requests from one queue.

        ``in_flight`` is the number of requests the caller has ordered but
        not yet seen answered (for ``shard``, *that shard's* share) -- the
        congestion signal the adaptive controller uses alongside the queue
        depth.  ``shard`` selects which per-shard FIFO to drain; by default
        the queue whose head request arrived first among those holding a
        full bundle (falling back to overall FIFO order).
        """
        shard = self._pick(shard)
        queue = self._queues.get(shard)
        if not queue:
            return []
        self._maybe_demote(shard, now)
        self._last_active[shard] = now
        backlog = len(queue)
        count = min(backlog, limit if limit is not None
                    else self.bundle_size_for(shard))
        if count == 0:
            return []
        batch = queue[:count]
        del queue[:count]
        if not queue:
            del self._queues[shard]
        for certificate in batch:
            key = self._key(certificate)
            del self._keys[key]
            del self._arrival_of[key]
            self._h_wait_ms.observe(now - self._arrival_time[key])
            del self._arrival_time[key]
        self.total_batches += 1
        self.largest_batch = max(self.largest_batch, count)
        self._note_take(shard, backlog, count, in_flight)
        self._h_bundle_size.observe(count)
        self._g_window.set(self.controller_for(shard).current)
        return batch

    def _note_take(self, shard: Optional[int], backlog_before: int,
                   taken: int, in_flight: int) -> None:
        controller = self.controller_for(shard)
        if (shard is not None and controller is self.controller
                and self._controller_factory is not None):
            congested = (backlog_before - taken > 0
                         or in_flight + taken > controller.current)
            if congested:
                # First congestion on this shard: promote it to its own
                # controller so the shared low-load controller never grows.
                controller = self._controller_factory()
                self._shard_controllers[shard] = controller
        controller.on_take(backlog_before, taken, in_flight)

    def remove(self, client: NodeId, timestamp: int) -> None:
        """Drop a pending request (e.g. because it already committed elsewhere)."""
        key = (client, timestamp)
        if key not in self._keys:
            return
        shard = self._keys.pop(key)
        del self._arrival_of[key]
        del self._arrival_time[key]
        queue = self._queues.get(shard, [])
        queue[:] = [cert for cert in queue if self._key(cert) != key]
        if not queue:
            self._queues.pop(shard, None)

    def pending_requests(self) -> List[Certificate]:
        """The request certificates currently waiting, in arrival order."""
        pending = [cert for queue in self._queues.values() for cert in queue]
        pending.sort(key=lambda cert: self._arrival_of[self._key(cert)])
        return pending

    def average_batch_size(self) -> float:
        """Mean requests per batch taken so far (1.0 if nothing taken yet)."""
        if self.total_batches == 0:
            return 1.0
        return self.total_enqueued / self.total_batches
