"""Request batching ("bundles").

The BASE library bundles requests when load is high and runs agreement once
per bundle; the paper additionally signs reply bundles with a single
threshold signature so that the expensive public-key operation amortises
across all the replies in the bundle (Section 5.3, Figure 5).

The :class:`Batcher` holds request certificates that have not yet been
assigned to a batch.  The primary drains it with :meth:`take` when either a
full bundle is available or the batch timeout expires with at least one
pending request.  Duplicate requests (same client and timestamp) are folded.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..crypto.certificate import Certificate
from ..messages.request import ClientRequest
from ..util.ids import NodeId


class Batcher:
    """FIFO of pending request certificates with duplicate suppression."""

    def __init__(self, bundle_size: int) -> None:
        if bundle_size < 1:
            raise ValueError("bundle_size must be at least 1")
        self.bundle_size = bundle_size
        self._queue: List[Certificate] = []
        self._keys: Dict[Tuple[NodeId, int], int] = {}
        self.total_enqueued = 0
        self.total_batches = 0

    def __len__(self) -> int:
        return len(self._queue)

    @staticmethod
    def _key(certificate: Certificate) -> Tuple[NodeId, int]:
        request: ClientRequest = certificate.payload
        return (request.client, request.timestamp)

    def add(self, certificate: Certificate) -> bool:
        """Enqueue a request certificate; returns False if it was a duplicate."""
        key = self._key(certificate)
        if key in self._keys:
            return False
        self._keys[key] = len(self._queue)
        self._queue.append(certificate)
        self.total_enqueued += 1
        return True

    def contains(self, client: NodeId, timestamp: int) -> bool:
        return (client, timestamp) in self._keys

    def has_full_bundle(self) -> bool:
        return len(self._queue) >= self.bundle_size

    def has_work(self) -> bool:
        return bool(self._queue)

    def take(self, limit: Optional[int] = None) -> List[Certificate]:
        """Remove and return up to ``limit`` (default ``bundle_size``) requests."""
        count = min(len(self._queue), limit if limit is not None else self.bundle_size)
        if count == 0:
            return []
        batch = self._queue[:count]
        self._queue = self._queue[count:]
        self._keys = {self._key(cert): i for i, cert in enumerate(self._queue)}
        self.total_batches += 1
        return batch

    def remove(self, client: NodeId, timestamp: int) -> None:
        """Drop a pending request (e.g. because it already committed elsewhere)."""
        key = (client, timestamp)
        if key not in self._keys:
            return
        self._queue = [cert for cert in self._queue if self._key(cert) != key]
        self._keys = {self._key(cert): i for i, cert in enumerate(self._queue)}

    def pending_requests(self) -> List[Certificate]:
        """The request certificates currently waiting to be ordered."""
        return list(self._queue)

    def average_batch_size(self) -> float:
        """Mean requests per batch taken so far (1.0 if nothing taken yet)."""
        if self.total_batches == 0:
            return 1.0
        return self.total_enqueued / self.total_batches
