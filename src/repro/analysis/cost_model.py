"""The analytic relative-cost model of Section 5.3 / Figure 4.

The paper models the processing cost of one request, relative to an
unreplicated server, as::

    relativeCost = (numExec * proc_app + overhead_req + overhead_batch / numPerBatch)
                   / proc_app

where ``overhead_req`` and ``overhead_batch`` are the cryptographic costs
charged per request and per batch respectively.  The per-system operation
counts come straight from the paper (to tolerate one fault):

* **BASE**:         4 execution replicas, 8 MAC ops per request, 36 per batch;
* **Separate**:     3 execution replicas, 7 MAC ops per request, 39 per batch;
* **Privacy**:      3 execution replicas, 7 MAC ops per request, and per batch
                    39 MAC ops, 3 threshold signatures, 6 threshold verifications.

MAC operations are assumed to cost 0.2 ms, threshold signing 15 ms, and
threshold verification 0.7 ms (Section 5.2 measurements), all overridable via
:class:`repro.config.CryptoCosts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..config import CryptoCosts


@dataclass(frozen=True)
class OperationCounts:
    """Cryptographic operations charged per request and per batch."""

    mac_per_request: float = 0.0
    mac_per_batch: float = 0.0
    threshold_sign_per_batch: float = 0.0
    threshold_verify_per_batch: float = 0.0

    def overhead_request_ms(self, costs: CryptoCosts) -> float:
        return self.mac_per_request * costs.mac_ms

    def overhead_batch_ms(self, costs: CryptoCosts) -> float:
        return (self.mac_per_batch * costs.mac_ms
                + self.threshold_sign_per_batch * costs.threshold_share_ms
                + self.threshold_verify_per_batch * costs.threshold_verify_ms)


@dataclass(frozen=True)
class SystemCostModel:
    """Execution-replica count plus operation counts for one architecture."""

    name: str
    num_execution_replicas: int
    counts: OperationCounts


#: Operation counts from Section 5.3 of the paper (tolerating one fault).
BASE_COST_MODEL = SystemCostModel(
    name="BASE",
    num_execution_replicas=4,
    counts=OperationCounts(mac_per_request=8, mac_per_batch=36),
)

SEPARATE_COST_MODEL = SystemCostModel(
    name="Separate",
    num_execution_replicas=3,
    counts=OperationCounts(mac_per_request=7, mac_per_batch=39),
)

PRIVACY_COST_MODEL = SystemCostModel(
    name="Separate+Privacy",
    num_execution_replicas=3,
    counts=OperationCounts(mac_per_request=7, mac_per_batch=39,
                           threshold_sign_per_batch=3,
                           threshold_verify_per_batch=6),
)


@dataclass(frozen=True)
class CostModelPoint:
    """One point on a Figure-4 curve."""

    system: str
    batch_size: int
    app_processing_ms: float
    relative_cost: float


def relative_cost(model: SystemCostModel, app_processing_ms: float,
                  batch_size: int, costs: CryptoCosts | None = None) -> float:
    """The paper's relativeCost formula for one configuration."""
    if app_processing_ms <= 0:
        raise ValueError("application processing time must be positive")
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    costs = costs or CryptoCosts()
    numerator = (model.num_execution_replicas * app_processing_ms
                 + model.counts.overhead_request_ms(costs)
                 + model.counts.overhead_batch_ms(costs) / batch_size)
    return numerator / app_processing_ms


def relative_cost_curve(model: SystemCostModel, batch_size: int,
                        app_processing_ms_values: Sequence[float],
                        costs: CryptoCosts | None = None) -> List[CostModelPoint]:
    """Sweep application processing time for one system/batch-size curve."""
    return [
        CostModelPoint(system=model.name, batch_size=batch_size,
                       app_processing_ms=app_ms,
                       relative_cost=relative_cost(model, app_ms, batch_size, costs))
        for app_ms in app_processing_ms_values
    ]


def crossover_app_processing_ms(model_a: SystemCostModel, model_b: SystemCostModel,
                                batch_size: int,
                                costs: CryptoCosts | None = None,
                                low: float = 0.05, high: float = 500.0) -> float:
    """Application processing time where the two models' costs cross.

    Returns ``low`` / ``high`` when one model dominates over the whole range.
    Used to check the paper's claim that with batch size 10 the privacy
    firewall becomes cheaper than BASE once requests take more than ~5 ms.
    """
    costs = costs or CryptoCosts()

    def diff(app_ms: float) -> float:
        return (relative_cost(model_a, app_ms, batch_size, costs)
                - relative_cost(model_b, app_ms, batch_size, costs))

    lo, hi = low, high
    if diff(lo) == 0:
        return lo
    if diff(lo) * diff(hi) > 0:
        return lo if abs(diff(lo)) < abs(diff(hi)) else hi
    for _ in range(200):
        mid = (lo + hi) / 2
        if diff(lo) * diff(mid) <= 0:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2
