"""Critical-path attribution: fold trace events into per-stage latencies.

The tracer (:mod:`repro.obs.trace`) records point events as a request hops
through the planes.  This module folds those points into the six canonical
stages of a committed request's life -- the quantities the ROADMAP's
scaling questions need answered per request, not per run:

========  =======================  ==========================================
stage     boundary events          what the time is spent on
========  =======================  ==========================================
admit     submit -> admit          client send + primary's request validation
batch     admit -> order           waiting in the batcher for a bundle slot
agree     order -> commit          pre-prepare/prepare/commit rounds
release   commit -> release        pipeline window + shard release frontier
execute   release -> execute       execution-replica queueing + application
reply     execute -> reply         reply certificate assembly + client vote
========  =======================  ==========================================

Three optional stages appear when the workload exercises them: ``vote``
(``vote_open -> vote_done``, the cross-shard read-set vote round),
``collate`` (``execute -> collate``, multi-shard sub-reply collation), and
``coordinate`` (``coordinate_open -> coordinate_done``, the time a
cross-group marker spends holding a multi-log release frontier while the
cross-log cut certifies).

Events are folded per trace id with min-time semantics: when several nodes
record the same event for one request (every replica admits, commits, and
executes it), the earliest occurrence is taken -- the chain of earliest
occurrences is the fastest causal path that can have produced the reply,
i.e. the critical path.  Only traces that completed (carry a ``reply``
event) contribute, so in-flight requests at the end of a measurement window
do not skew the tails.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .metrics import percentile
from .reporting import format_table

#: the canonical stages, in causal order (always present in a breakdown)
STAGES: Tuple[str, ...] = ("admit", "batch", "agree", "release", "execute", "reply")

#: optional stages, only reported when their events occur
OPTIONAL_STAGES: Tuple[str, ...] = ("vote", "collate", "coordinate")

#: stage name -> (start event, end event)
STAGE_BOUNDARIES: Dict[str, Tuple[str, str]] = {
    "admit": ("submit", "admit"),
    "batch": ("admit", "order"),
    "agree": ("order", "commit"),
    "release": ("commit", "release"),
    "execute": ("release", "execute"),
    "reply": ("execute", "reply"),
    "vote": ("vote_open", "vote_done"),
    "collate": ("execute", "collate"),
    "coordinate": ("coordinate_open", "coordinate_done"),
}


def stage_durations(events: Iterable) -> Dict[str, List[float]]:
    """Per-stage duration samples (ms), one per completed trace per stage.

    ``events`` is any iterable of objects/tuples with ``trace_id``,
    ``event``, and ``t_ms`` fields (``repro.obs.TraceEvent`` or the dicts a
    JSONL trace deserialises to).
    """
    earliest: Dict[str, Dict[str, float]] = {}
    for record in events:
        if isinstance(record, dict):
            trace_id, name, t_ms = record["trace_id"], record["event"], record["t_ms"]
        else:
            trace_id, name, t_ms = record.trace_id, record.event, record.t_ms
        trace = earliest.setdefault(trace_id, {})
        previous = trace.get(name)
        if previous is None or t_ms < previous:
            trace[name] = t_ms

    durations: Dict[str, List[float]] = {stage: [] for stage in STAGES}
    for trace in earliest.values():
        if "reply" not in trace:
            continue
        for stage in STAGES + OPTIONAL_STAGES:
            start_event, end_event = STAGE_BOUNDARIES[stage]
            start = trace.get(start_event)
            end = trace.get(end_event)
            if start is None or end is None:
                continue
            durations.setdefault(stage, []).append(max(0.0, end - start))
    return {stage: samples for stage, samples in durations.items()
            if samples or stage in STAGES}


def _summarise(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"samples": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0,
                "p999_ms": 0.0, "max_ms": 0.0}
    ordered = sorted(samples)
    return {
        "samples": len(ordered),
        "mean_ms": sum(ordered) / len(ordered),
        "p50_ms": percentile(ordered, 0.50),
        "p99_ms": percentile(ordered, 0.99),
        "p999_ms": percentile(ordered, 0.999),
        "max_ms": ordered[-1],
    }


def critical_path_breakdown(events: Iterable) -> Dict[str, object]:
    """The per-stage breakdown embedded in every ``BENCH_*.json``.

    Always contains all six canonical stages (empty stages report zeroes so
    schema consumers can rely on the fields existing), plus any optional
    stages the trace exercised, plus the dominant stage -- the one with the
    largest mean contribution to end-to-end latency.
    """
    durations = stage_durations(events)
    stages = {stage: _summarise(durations.get(stage, ())) for stage in STAGES}
    for stage in OPTIONAL_STAGES:
        if durations.get(stage):
            stages[stage] = _summarise(durations[stage])
    populated = {name: summary for name, summary in stages.items()
                 if summary["samples"] > 0}
    dominant = (max(populated, key=lambda name: populated[name]["mean_ms"])
                if populated else "")
    return {
        "traces": max((s["samples"] for s in stages.values()), default=0),
        "stages": stages,
        "dominant_stage": dominant,
        "dominant_mean_ms": populated.get(dominant, {}).get("mean_ms", 0.0),
    }


def format_critical_path_table(breakdown: Dict[str, object],
                               title: Optional[str] = None) -> str:
    """Render a breakdown through the shared fixed-width table formatter."""
    stages: Dict[str, Dict[str, float]] = breakdown["stages"]  # type: ignore[assignment]
    rows = []
    for stage in list(STAGES) + [s for s in stages if s not in STAGES]:
        summary = stages[stage]
        marker = " <- dominant" if stage == breakdown.get("dominant_stage") else ""
        rows.append([stage + marker, summary["samples"], summary["mean_ms"],
                     summary["p50_ms"], summary["p99_ms"], summary["p999_ms"],
                     summary["max_ms"]])
    return format_table(
        ["stage", "samples", "mean ms", "p50 ms", "p99 ms", "p999 ms", "max ms"],
        rows,
        title=title if title is not None else "critical-path breakdown "
        f"({breakdown.get('traces', 0)} completed traces)")
