"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's figures and
tables report; this module keeps the formatting consistent and dependency
free (no plotting libraries are available offline).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render ``rows`` as a fixed-width text table."""
    string_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in string_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False
