"""Latency and throughput summaries shared by benchmarks and tests."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of latency samples (milliseconds)."""

    samples: int
    mean_ms: float
    median_ms: float
    p95_ms: float
    p99_ms: float
    p999_ms: float
    min_ms: float
    max_ms: float
    stdev_ms: float


@dataclass(frozen=True)
class ThroughputSummary:
    """Requests completed over a measurement window."""

    completed: int
    window_ms: float

    @property
    def requests_per_second(self) -> float:
        if self.window_ms <= 0:
            return 0.0
        return self.completed * 1_000.0 / self.window_ms


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of pre-sorted samples.

    Nearest-rank takes the sample at rank ``ceil(fraction * n)`` (1-based).
    The previous ``int(fraction * n)`` truncation under-indexed by one rank
    whenever ``fraction * n`` was not an integer *and* over-indexed the
    median (``0.5 * n`` exact gave rank ``n/2 + 1``), biasing every reported
    percentile; ``ceil(fraction * n) - 1`` is the correct 0-based index.
    """
    if not sorted_samples:
        raise ValueError("percentile of an empty sample set")
    index = min(len(sorted_samples) - 1,
                max(0, math.ceil(fraction * len(sorted_samples)) - 1))
    return sorted_samples[index]


def summarize_latencies(latencies_ms: Iterable[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` over the given samples."""
    samples: List[float] = sorted(latencies_ms)
    if not samples:
        raise ValueError("cannot summarize an empty latency set")
    return LatencySummary(
        samples=len(samples),
        mean_ms=statistics.fmean(samples),
        median_ms=statistics.median(samples),
        p95_ms=percentile(samples, 0.95),
        p99_ms=percentile(samples, 0.99),
        p999_ms=percentile(samples, 0.999),
        min_ms=samples[0],
        max_ms=samples[-1],
        stdev_ms=statistics.pstdev(samples) if len(samples) > 1 else 0.0,
    )
