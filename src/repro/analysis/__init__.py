"""Analysis: the Figure-4 cost model, metric collection, and report formatting."""

from .cost_model import (
    CostModelPoint,
    OperationCounts,
    SystemCostModel,
    BASE_COST_MODEL,
    SEPARATE_COST_MODEL,
    PRIVACY_COST_MODEL,
    relative_cost,
    relative_cost_curve,
)
from .critical_path import (
    STAGES as CRITICAL_PATH_STAGES,
    critical_path_breakdown,
    format_critical_path_table,
    stage_durations,
)
from .metrics import LatencySummary, ThroughputSummary, percentile, summarize_latencies
from .reporting import format_table

__all__ = [
    "CostModelPoint",
    "OperationCounts",
    "SystemCostModel",
    "BASE_COST_MODEL",
    "SEPARATE_COST_MODEL",
    "PRIVACY_COST_MODEL",
    "relative_cost",
    "relative_cost_curve",
    "LatencySummary",
    "ThroughputSummary",
    "percentile",
    "summarize_latencies",
    "format_table",
    "CRITICAL_PATH_STAGES",
    "critical_path_breakdown",
    "format_critical_path_table",
    "stage_durations",
]
