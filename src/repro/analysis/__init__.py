"""Analysis: the Figure-4 cost model, metric collection, and report formatting."""

from .cost_model import (
    CostModelPoint,
    OperationCounts,
    SystemCostModel,
    BASE_COST_MODEL,
    SEPARATE_COST_MODEL,
    PRIVACY_COST_MODEL,
    relative_cost,
    relative_cost_curve,
)
from .metrics import LatencySummary, ThroughputSummary, summarize_latencies
from .reporting import format_table

__all__ = [
    "CostModelPoint",
    "OperationCounts",
    "SystemCostModel",
    "BASE_COST_MODEL",
    "SEPARATE_COST_MODEL",
    "PRIVACY_COST_MODEL",
    "relative_cost",
    "relative_cost_curve",
    "LatencySummary",
    "ThroughputSummary",
    "summarize_latencies",
    "format_table",
]
