"""Open-loop load generator (Figure 5 of the paper).

Clients issue null-server requests at a target aggregate rate regardless of
whether earlier requests have completed, which is how the paper measures the
response time of the system as offered load approaches saturation for
different bundle sizes.

Because a correct client keeps only one request outstanding, high offered
loads are spread over many simulated clients; requests that would exceed a
client's pipeline simply queue at the client, which is exactly the
response-time blow-up the figure shows past the saturation point.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional

from ..apps.null_service import null_operation
from ..core.system import SimulatedSystem
from ..errors import LivenessTimeoutError


@dataclass(frozen=True)
class OpenLoopResult:
    """Result of one open-loop run at a fixed offered load."""

    offered_load_rps: float
    duration_ms: float
    completed: int
    achieved_throughput_rps: float
    mean_response_ms: float
    p95_response_ms: float
    max_server_utilization: float

    def row(self) -> str:
        return (f"{self.offered_load_rps:>8.1f} {self.achieved_throughput_rps:>10.1f} "
                f"{self.mean_response_ms:>10.2f} {self.p95_response_ms:>10.2f} "
                f"{self.max_server_utilization:>6.2f}")


def run_open_loop(system: SimulatedSystem, *, offered_load_rps: float,
                  duration_ms: float = 2_000.0, request_bytes: int = 1024,
                  reply_bytes: int = 1024, drain_ms: float = 4_000.0) -> OpenLoopResult:
    """Offer ``offered_load_rps`` requests/second for ``duration_ms`` and measure.

    Requests are assigned round-robin to the system's clients at deterministic
    arrival times.  After the offered-load window the system runs for up to
    ``drain_ms`` more so in-flight requests can complete; requests that never
    complete simply reduce the achieved throughput.
    """
    interval_ms = 1_000.0 / offered_load_rps
    num_clients = len(system.clients)
    start = system.now
    planned = 0
    arrival = start
    tag = 0
    # Schedule all arrivals up front through the scheduler so that submission
    # does not depend on completion (open loop).
    while arrival < start + duration_ms:
        client_index = planned % num_clients
        operation = null_operation(request_bytes, reply_bytes, tag=tag)
        system.scheduler.call_at(
            arrival,
            lambda op=operation, ci=client_index: system.clients[ci].submit(op),
            label="open-loop-arrival",
        )
        planned += 1
        tag += 1
        arrival += interval_ms

    completed_before = system.total_completed()
    system.run(duration_ms + drain_ms)
    window_end = start + duration_ms + drain_ms

    responses: List[float] = []
    last_completion = start
    for client in system.clients:
        for record in client.completed:
            if record.issued_at_ms >= start:
                responses.append(record.latency_ms)
                last_completion = max(last_completion, record.completed_at_ms)
    completed = system.total_completed() - completed_before
    # Throughput is measured over the interval it actually took to finish the
    # completed requests: at light load this is essentially the offered-load
    # window, while past saturation the backlog drains after the window and
    # the achieved rate converges to the service capacity.
    measurement_window_ms = max(duration_ms, last_completion - start, 1e-9)
    achieved = completed * 1_000.0 / measurement_window_ms
    if responses:
        responses.sort()
        mean_response = statistics.fmean(responses)
        p95 = responses[min(len(responses) - 1, int(0.95 * len(responses)))]
    else:
        mean_response = float("inf")
        p95 = float("inf")
    return OpenLoopResult(
        offered_load_rps=offered_load_rps,
        duration_ms=duration_ms,
        completed=completed,
        achieved_throughput_rps=achieved,
        mean_response_ms=mean_response,
        p95_response_ms=p95,
        max_server_utilization=system.max_server_utilization(window_end - start),
    )
