"""Closed-loop microbenchmarks.

* :func:`run_latency_benchmark` -- the null-server latency benchmark of
  Figure 3: a single closed-loop client issues requests of a given
  request/reply size and the mean/percentile latencies are reported.  The
  paper runs 10 rounds of 200 requests for each of three size combinations
  (40/40, 40/4096, 4096/40 bytes) and five system configurations; the
  benchmark harness sweeps the matrix.
* :func:`run_multishard_workload` -- a key-value workload for the sharded
  architecture (``repro.sharding``): many closed-loop clients issue put/get
  operations over a keyspace drawn uniformly or with a skewed (Zipf-like)
  popularity distribution, and the aggregate throughput over virtual time is
  reported.  Sweeping the shard count with this workload is how
  ``benchmarks/bench_shard_scaling.py`` demonstrates that execution capacity
  scales horizontally behind a fixed agreement cluster.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List, Optional

from ..apps.kvstore import get as kv_get
from ..apps.kvstore import put as kv_put
from ..apps.null_service import NullService, null_operation
from ..core.system import SimulatedSystem


@dataclass(frozen=True)
class LatencyResult:
    """Latency statistics for one benchmark configuration."""

    label: str
    request_bytes: int
    reply_bytes: int
    samples: int
    mean_ms: float
    median_ms: float
    p95_ms: float
    min_ms: float
    max_ms: float

    def row(self) -> str:
        """One formatted table row (used by the benchmark harness output)."""
        return (f"{self.label:<28} {self.request_bytes:>6}/{self.reply_bytes:<6} "
                f"{self.mean_ms:>8.2f} {self.median_ms:>8.2f} {self.p95_ms:>8.2f}")


def run_latency_benchmark(system: SimulatedSystem, *, label: str,
                          request_bytes: int = 40, reply_bytes: int = 40,
                          requests: int = 50, warmup: int = 5,
                          client_index: int = 0,
                          timeout_ms: float = 120_000.0) -> LatencyResult:
    """Run the null-server latency benchmark against an assembled system.

    ``warmup`` requests are issued and discarded first so that one-time setup
    effects (initial view, first checkpoint) do not skew the statistics.
    """
    for i in range(warmup):
        system.invoke(null_operation(request_bytes, reply_bytes, tag=-(i + 1)),
                      client_index=client_index, timeout_ms=timeout_ms)
    latencies: List[float] = []
    for i in range(requests):
        record = system.invoke(null_operation(request_bytes, reply_bytes, tag=i),
                               client_index=client_index, timeout_ms=timeout_ms)
        latencies.append(record.latency_ms)
    latencies.sort()
    return LatencyResult(
        label=label,
        request_bytes=request_bytes,
        reply_bytes=reply_bytes,
        samples=len(latencies),
        mean_ms=statistics.fmean(latencies),
        median_ms=statistics.median(latencies),
        p95_ms=latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))],
        min_ms=latencies[0],
        max_ms=latencies[-1],
    )


# ---------------------------------------------------------------------- #
# Multi-shard key-value workload.
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardWorkloadResult:
    """Aggregate statistics of one multi-shard key-value run."""

    label: str
    distribution: str
    requests: int
    completed: int
    elapsed_ms: float
    throughput_rps: float
    mean_latency_ms: float
    p95_latency_ms: float
    requests_by_shard: List[int]

    def row(self) -> str:
        shards = "/".join(str(count) for count in self.requests_by_shard)
        return (f"{self.label:<22} {self.distribution:<8} {self.completed:>6} "
                f"{self.throughput_rps:>10.1f} {self.mean_latency_ms:>9.2f} "
                f"{self.p95_latency_ms:>9.2f}   [{shards}]")


def multishard_operations(num_requests: int, *, key_space: int = 64,
                          distribution: str = "uniform", skew: float = 1.1,
                          write_fraction: float = 0.5, value_size: int = 32,
                          seed: int = 0) -> List:
    """Generate a put/get operation mix over ``key_space`` keys.

    ``distribution`` is ``"uniform"`` or ``"skewed"``; the skewed variant
    draws keys from a Zipf-like power law with exponent ``skew`` (popular
    keys concentrate on whichever shard owns them -- the worst case for
    sharding).  The generator is seeded, so the same arguments always produce
    the same operation sequence on every run.
    """
    if distribution not in ("uniform", "skewed"):
        raise ValueError(f"unknown distribution {distribution!r}")
    rng = random.Random(seed)
    if distribution == "skewed":
        weights = [1.0 / (rank + 1) ** skew for rank in range(key_space)]
    else:
        weights = None
    indices = rng.choices(range(key_space), weights=weights, k=num_requests)
    operations = []
    for index in indices:
        key = f"key-{index:05d}"
        if rng.random() < write_fraction:
            operations.append(kv_put(key, "v" * value_size))
        else:
            operations.append(kv_get(key))
    return operations


def run_multishard_workload(system: SimulatedSystem, *, label: str = "",
                            num_requests: int = 200, key_space: int = 64,
                            distribution: str = "uniform", skew: float = 1.1,
                            write_fraction: float = 0.5, value_size: int = 32,
                            seed: int = 0,
                            timeout_ms: float = 600_000.0) -> ShardWorkloadResult:
    """Drive a key-value system with a closed-loop multi-client workload.

    The operations are spread round-robin over every client of ``system``;
    each correct client keeps one request outstanding and queues the rest, so
    the aggregate concurrency equals the client population.  Throughput is
    measured over the virtual time from first submission to last completion.

    Works against any key-value deployment (:class:`ShardedSystem` or the
    unsharded baselines), which is what makes shard-count sweeps
    apples-to-apples.
    """
    operations = multishard_operations(
        num_requests, key_space=key_space, distribution=distribution, skew=skew,
        write_fraction=write_fraction, value_size=value_size, seed=seed)
    num_clients = len(system.clients)
    before_completed = system.total_completed()
    before_latencies = len(system.all_latencies_ms())
    start_ms = system.now
    for i, operation in enumerate(operations):
        system.submit(operation, client_index=i % num_clients)
    system.run_until(
        lambda: system.total_completed() >= before_completed + len(operations),
        timeout_ms, description=f"{len(operations)} workload completions")
    elapsed_ms = max(system.now - start_ms, 1e-9)
    latencies = sorted(system.all_latencies_ms()[before_latencies:])
    by_shard = getattr(system, "requests_executed_by_shard", None)
    requests_by_shard = list(by_shard()) if by_shard is not None else [
        system.total_requests_executed()]
    return ShardWorkloadResult(
        label=label,
        distribution=distribution,
        requests=len(operations),
        completed=system.total_completed() - before_completed,
        elapsed_ms=elapsed_ms,
        throughput_rps=1000.0 * (system.total_completed() - before_completed) / elapsed_ms,
        mean_latency_ms=statistics.fmean(latencies) if latencies else 0.0,
        p95_latency_ms=(latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
                        if latencies else 0.0),
        requests_by_shard=requests_by_shard,
    )
