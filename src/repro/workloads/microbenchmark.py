"""Null-server latency microbenchmark (Figure 3 of the paper).

The benchmark issues a sequence of null-server requests with a given
request/reply size from a single closed-loop client and reports the mean and
percentile latencies.  The paper runs 10 rounds of 200 requests for each of
three size combinations (40/40, 40/4096, 4096/40 bytes) and five system
configurations; :func:`run_latency_benchmark` reproduces one cell of that
matrix and the benchmark harness sweeps the rest.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional

from ..apps.null_service import NullService, null_operation
from ..core.system import SimulatedSystem


@dataclass(frozen=True)
class LatencyResult:
    """Latency statistics for one benchmark configuration."""

    label: str
    request_bytes: int
    reply_bytes: int
    samples: int
    mean_ms: float
    median_ms: float
    p95_ms: float
    min_ms: float
    max_ms: float

    def row(self) -> str:
        """One formatted table row (used by the benchmark harness output)."""
        return (f"{self.label:<28} {self.request_bytes:>6}/{self.reply_bytes:<6} "
                f"{self.mean_ms:>8.2f} {self.median_ms:>8.2f} {self.p95_ms:>8.2f}")


def run_latency_benchmark(system: SimulatedSystem, *, label: str,
                          request_bytes: int = 40, reply_bytes: int = 40,
                          requests: int = 50, warmup: int = 5,
                          client_index: int = 0,
                          timeout_ms: float = 120_000.0) -> LatencyResult:
    """Run the null-server latency benchmark against an assembled system.

    ``warmup`` requests are issued and discarded first so that one-time setup
    effects (initial view, first checkpoint) do not skew the statistics.
    """
    for i in range(warmup):
        system.invoke(null_operation(request_bytes, reply_bytes, tag=-(i + 1)),
                      client_index=client_index, timeout_ms=timeout_ms)
    latencies: List[float] = []
    for i in range(requests):
        record = system.invoke(null_operation(request_bytes, reply_bytes, tag=i),
                               client_index=client_index, timeout_ms=timeout_ms)
        latencies.append(record.latency_ms)
    latencies.sort()
    return LatencyResult(
        label=label,
        request_bytes=request_bytes,
        reply_bytes=reply_bytes,
        samples=len(latencies),
        mean_ms=statistics.fmean(latencies),
        median_ms=statistics.median(latencies),
        p95_ms=latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))],
        min_ms=latencies[0],
        max_ms=latencies[-1],
    )
