"""Workload generators for the paper's evaluation.

* :mod:`repro.workloads.microbenchmark` -- the null-server latency benchmark
  (Figure 3) with configurable request/reply sizes.
* :mod:`repro.workloads.open_loop` -- the open-loop load generator used for
  the throughput/bundling experiment (Figure 5).
* :mod:`repro.workloads.skew` -- hot-key (80/20 and Zipf) workloads plus
  the fixed-window shard-affine driver for the skew benchmark.
* :mod:`repro.workloads.andrew` -- the modified Andrew benchmark phases run
  against the NFS service (Figures 6 and 7).
"""

from .microbenchmark import (
    LatencyResult,
    ShardWorkloadResult,
    multishard_operations,
    run_latency_benchmark,
    run_multishard_workload,
)
from .open_loop import OpenLoopResult, run_open_loop
from .skew import (
    SkewWindowResult,
    equal_range_boundaries,
    hot_range_operations,
    migrating_hot_range_operations,
    run_ordered_window,
    run_skew_window,
    shard_affine_clients,
    zipf_operations,
)
from .andrew import AndrewResult, AndrewScale, andrew_phase_operations, run_andrew
from .crossshard import (
    AuditResult,
    CrossShardWindowResult,
    audit_cross_group_consistency,
    audit_key,
    audit_snapshot_consistency,
    const_key,
    mixed_cross_group_operations,
    mixed_cross_shard_operations,
    run_crossshard_window,
    seed_operations,
)

__all__ = [
    "AuditResult",
    "CrossShardWindowResult",
    "audit_cross_group_consistency",
    "audit_key",
    "audit_snapshot_consistency",
    "const_key",
    "mixed_cross_group_operations",
    "mixed_cross_shard_operations",
    "run_crossshard_window",
    "seed_operations",
    "SkewWindowResult",
    "equal_range_boundaries",
    "hot_range_operations",
    "migrating_hot_range_operations",
    "run_ordered_window",
    "run_skew_window",
    "shard_affine_clients",
    "zipf_operations",
    "LatencyResult",
    "ShardWorkloadResult",
    "multishard_operations",
    "run_latency_benchmark",
    "run_multishard_workload",
    "OpenLoopResult",
    "run_open_loop",
    "AndrewResult",
    "AndrewScale",
    "andrew_phase_operations",
    "run_andrew",
]
