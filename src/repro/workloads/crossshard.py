"""Mixed single/multi-shard workloads for the cross-shard benchmark.

The workload models a key-value service where most traffic is single-key
but a configurable fraction of operations spans shards: snapshot reads over
several shards' keys and write transactions that update several shards
atomically.  It is built so that snapshot consistency is *auditable from
the outside*:

* each shard owns one **audit key**; every committed multi-shard write
  transaction writes the *same* monotonically increasing stamp to all the
  audit keys it touches -- always the full set, so at any consistent cut
  of the agreed order the audit keys are equal;
* every multi-shard snapshot read reads two or more audit keys, so a torn
  read (two audit keys with different stamps in one reply) is direct proof
  that the "consistent cut" was not one.  :func:`audit_snapshot_consistency`
  scans the completed records for exactly that.
* each shard also owns one **constant key**, written once at setup and
  never changed: read-validating transactions expect its known value, so
  their vote round (the expensive part of a cross-shard transaction) runs
  on every one of them while the commit outcome stays deterministic.  A
  configurable slice instead expects a value that is deliberately wrong --
  those must abort on every replica, which the audit also checks.

Everything is seeded and deterministic, so benchmark comparisons between
single-shard-only and mixed runs replay bit-identical workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..apps.kvstore import get as kv_get
from ..apps.kvstore import multi_get, put as kv_put, transaction
from ..core.system import SimulatedSystem

#: sentinel value conflict transactions expect (never actually stored)
_CONFLICT_EXPECTED = "__never__"
#: value stored under every constant key at setup
CONST_VALUE = "const"


def _mid_index(key_space: int, num_shards: int, shard: int) -> int:
    """A key index in the middle of ``shard``'s equal range."""
    return (key_space * (2 * shard + 1)) // (2 * num_shards)


def audit_key(key_space: int, num_shards: int, shard: int) -> str:
    """The audit key owned by ``shard`` (sorts inside its equal range)."""
    return f"key-{_mid_index(key_space, num_shards, shard):05d}-x-aud"


def const_key(key_space: int, num_shards: int, shard: int) -> str:
    """The constant key owned by ``shard`` (written once at setup)."""
    return f"key-{_mid_index(key_space, num_shards, shard):05d}-x-const"


def seed_operations(key_space: int, num_shards: int) -> List:
    """Single-shard setup puts: the constant keys and audit stamp zero."""
    operations = []
    for shard in range(num_shards):
        operations.append(kv_put(const_key(key_space, num_shards, shard),
                                 CONST_VALUE))
        operations.append(kv_put(audit_key(key_space, num_shards, shard), 0))
    return operations


def mixed_cross_shard_operations(num_requests: int, *, key_space: int = 64,
                                 num_shards: int = 4,
                                 multi_fraction: float = 0.1,
                                 txn_fraction: float = 0.3,
                                 conflict_fraction: float = 0.1,
                                 write_fraction: float = 0.5,
                                 value_size: int = 32,
                                 seed: int = 0) -> List:
    """The mixed workload: uniform single-key put/get traffic plus a
    ``multi_fraction`` slice of multi-shard operations.

    Multi-shard operations span a random 2..``num_shards`` subset of
    shards: with probability ``txn_fraction`` a write transaction (all the
    touched shards' audit keys get the next stamp; the read set validates
    the constant keys -- or, for a ``conflict_fraction`` slice, expects a
    deliberately wrong value and must abort), otherwise a snapshot read
    over the touched shards' audit keys (plus, half the time, one regular
    key, so reads mix hot multi-shard state with ordinary state).
    """
    rng = random.Random(seed)
    operations = []
    stamp = 0
    for _ in range(num_requests):
        if rng.random() >= multi_fraction:
            index = rng.randrange(key_space)
            key = f"key-{index:05d}"
            if rng.random() < write_fraction:
                operations.append(kv_put(key, "v" * value_size))
            else:
                operations.append(kv_get(key))
            continue
        span = rng.randint(2, num_shards)
        shards = sorted(rng.sample(range(num_shards), span))
        audits = [audit_key(key_space, num_shards, shard) for shard in shards]
        if rng.random() < txn_fraction:
            stamp += 1
            # Committed writers always write the FULL audit set, so the
            # equal-stamps invariant holds at every cut.
            writes = {audit_key(key_space, num_shards, shard): stamp
                      for shard in range(num_shards)}
            if rng.random() < conflict_fraction:
                reads = {const_key(key_space, num_shards, shards[0]):
                         _CONFLICT_EXPECTED}
                stamp -= 1  # this transaction must abort: stamp unused
            else:
                reads = {const_key(key_space, num_shards, shard): CONST_VALUE
                         for shard in shards}
            operations.append(transaction(reads=reads, writes=writes))
        else:
            keys = list(audits)
            if rng.random() < 0.5:
                keys.append(f"key-{rng.randrange(key_space):05d}")
            operations.append(multi_get(keys))
    return operations


def mixed_cross_group_operations(num_requests: int, *, key_space: int = 64,
                                 num_shards: int = 4,
                                 multi_fraction: float = 0.1,
                                 txn_fraction: float = 0.3,
                                 write_fraction: float = 0.5,
                                 value_size: int = 32,
                                 audit_shards: Optional[Sequence[int]] = None,
                                 max_span: Optional[int] = None,
                                 seed: int = 0) -> List:
    """The multi-log variant of the mixed workload: uniform single-key
    traffic plus a ``multi_fraction`` slice of multi-shard operations whose
    transactions are **write-only** (empty read set).

    A multi-log deployment refuses read-validating cross-shard transactions
    (the vote round cannot pin one snapshot across independently ordered
    logs), so the cross-group slice uses snapshot reads and blind write
    transactions only.  The audit domain is ``audit_shards`` (default: all
    shards): committed writers stamp *every* audit key in the domain and
    snapshot reads sample at least two of them, so
    :func:`audit_snapshot_consistency` catches a torn cross-log cut exactly
    as it catches a torn single-log release.  Passing one shard per log
    keeps every multi-shard operation cross-group while bounding its span.
    """
    rng = random.Random(seed)
    domain = sorted(audit_shards) if audit_shards else list(range(num_shards))
    widest = min(max_span or len(domain), len(domain))
    operations = []
    stamp = 0
    for _ in range(num_requests):
        if rng.random() >= multi_fraction:
            index = rng.randrange(key_space)
            key = f"key-{index:05d}"
            if rng.random() < write_fraction:
                operations.append(kv_put(key, "v" * value_size))
            else:
                operations.append(kv_get(key))
            continue
        span = rng.randint(2, widest)
        shards = sorted(rng.sample(domain, span))
        if rng.random() < txn_fraction:
            stamp += 1
            writes = {audit_key(key_space, num_shards, shard): stamp
                      for shard in domain}
            operations.append(transaction(reads={}, writes=writes))
        else:
            keys = [audit_key(key_space, num_shards, shard)
                    for shard in shards]
            if rng.random() < 0.5:
                keys.append(f"key-{rng.randrange(key_space):05d}")
            operations.append(multi_get(keys))
    return operations


def is_audit_read(operation) -> bool:
    """Whether a completed operation is a multi-key read over audit keys."""
    if operation.kind != "multi_get":
        return False
    audit = [key for key in operation.args.get("keys", ())
             if key.endswith("-x-aud")]
    return len(audit) >= 2


def is_conflict_txn(operation) -> bool:
    """Whether a transaction was built to abort (wrong expected value)."""
    if operation.kind != "txn":
        return False
    return _CONFLICT_EXPECTED in operation.args.get("reads", {}).values()


@dataclass(frozen=True)
class AuditResult:
    """Outcome of the snapshot-consistency audit over completed requests."""

    audited_reads: int
    torn_reads: int
    committed_txns: int
    aborted_txns: int
    conflict_commits: int

    @property
    def consistent(self) -> bool:
        return self.torn_reads == 0 and self.conflict_commits == 0


def audit_snapshot_consistency(clients) -> AuditResult:
    """Audit every completed multi-shard reply for snapshot consistency.

    A multi-shard read over audit keys must see *equal* stamps (committed
    writers update them atomically at a cut, so any inequality is a torn
    snapshot), and a conflict transaction must have aborted everywhere.
    """
    audited = torn = committed = aborted = conflict_commits = 0
    for client in clients:
        for record in client.completed:
            operation = record.operation
            value = record.result.value
            if operation.kind == "txn" and isinstance(value, dict):
                if value.get("committed"):
                    committed += 1
                    if is_conflict_txn(operation):
                        conflict_commits += 1
                else:
                    aborted += 1
                continue
            if not is_audit_read(operation) or not isinstance(value, dict):
                continue
            values = value.get("values", {})
            stamps = [values.get(key) for key in operation.args["keys"]
                      if key.endswith("-x-aud")]
            audited += 1
            if len(set(stamps)) > 1:
                torn += 1
    return AuditResult(audited_reads=audited, torn_reads=torn,
                       committed_txns=committed, aborted_txns=aborted,
                       conflict_commits=conflict_commits)


def audit_cross_group_consistency(clients, *, key_space: int = 0,
                                  num_shards: int = 0,
                                  log_of_shard,
                                  shard_of_key=None) -> AuditResult:
    """Audit multi-shard replies against the *multi-log* contract.

    Independent agreement logs may order two concurrent cross-group
    markers inversely (serialising them is the deferred MVBA cut-ordering
    work), so a snapshot read spanning log groups only promises per-group
    atomicity: all audit stamps served by shards of *one* log must be
    equal -- each log releases a marker's envelopes to its own shards at a
    single slot of its order.  A within-group tear is therefore still a
    protocol violation and is what this audit counts.

    ``shard_of_key`` (audit key -> shard, or ``None`` to skip the key)
    overrides the default equal-range audit-key table -- callers holding a
    live partitioner can resolve ownership without knowing the key space.
    """
    if shard_of_key is None:
        shard_of_key = {audit_key(key_space, num_shards, shard): shard
                        for shard in range(num_shards)}.get
    audited = torn = committed = aborted = conflict_commits = 0
    for client in clients:
        for record in client.completed:
            operation = record.operation
            value = record.result.value
            if operation.kind == "txn" and isinstance(value, dict):
                if value.get("committed"):
                    committed += 1
                    if is_conflict_txn(operation):
                        conflict_commits += 1
                else:
                    aborted += 1
                continue
            if not is_audit_read(operation) or not isinstance(value, dict):
                continue
            values = value.get("values", {})
            by_log = {}
            for key in operation.args["keys"]:
                shard = shard_of_key(key)
                if shard is None:
                    continue
                by_log.setdefault(log_of_shard(shard), []).append(
                    values.get(key))
            audited += 1
            if any(len(set(stamps)) > 1 for stamps in by_log.values()):
                torn += 1
    return AuditResult(audited_reads=audited, torn_reads=torn,
                       committed_txns=committed, aborted_txns=aborted,
                       conflict_commits=conflict_commits)


@dataclass(frozen=True)
class CrossShardWindowResult:
    """Committed client throughput measured over a fixed window."""

    label: str
    duration_ms: float
    completed: int
    completed_per_sec: float
    multi_completed: int
    executed_by_shard: List[int]

    def row(self) -> str:
        shards = "/".join(str(count) for count in self.executed_by_shard)
        return (f"{self.label:<26} {self.completed:>7} "
                f"{self.completed_per_sec:>10.1f}   [{shards}]")


def run_crossshard_window(system: SimulatedSystem, *, operations: Sequence,
                          duration_ms: float, label: str = "",
                          warmup_ms: float = 200.0) -> CrossShardWindowResult:
    """Fixed-window driver measuring *client-completed* requests/second.

    Operations are dealt round-robin over every client (preserving the
    stream's temporal structure); completion is counted at the clients, so
    a cross-shard operation counts once regardless of how many shards it
    touched -- the fair unit for comparing a mixed run against a
    single-shard-only run.
    """
    num_clients = len(system.clients)
    for index, operation in enumerate(operations):
        system.submit(operation, client_index=index % num_clients)

    system.run(warmup_ms)
    completed_before = [len(client.completed) for client in system.clients]
    executed_before = list(system.requests_executed_by_shard())
    system.run(duration_ms)
    completed_after = [len(client.completed) for client in system.clients]
    executed_after = list(system.requests_executed_by_shard())

    completed = sum(after - before for before, after
                    in zip(completed_before, completed_after))
    multi_completed = 0
    for client, before, after in zip(system.clients, completed_before,
                                     completed_after):
        for record in client.completed[before:after]:
            if record.operation.kind in ("multi_get", "txn"):
                multi_completed += 1
    return CrossShardWindowResult(
        label=label,
        duration_ms=duration_ms,
        completed=completed,
        completed_per_sec=1000.0 * completed / max(duration_ms, 1e-9),
        multi_completed=multi_completed,
        executed_by_shard=[after - before for before, after
                           in zip(executed_before, executed_after)],
    )
