"""Hot-key (skewed) workloads for the sharded architecture.

Real key-value traffic is rarely uniform: a small set of hot keys absorbs
most accesses, and with range partitioning those keys concentrate on one
shard.  This module generates the classic **80/20 hot-range workload** (80%
of requests to the hottest ``hot_key_fraction`` of the key space, which a
range partitioner maps to one shard) plus Zipf-distributed variants, and a
fixed-window driver that measures *committed requests per second* while the
skew is live -- the quantity the per-shard pipeline windows
(:class:`repro.config.PipelineConfig`) are designed to protect.

The driver uses **shard-affine closed-loop clients**: each client works one
shard's keys, so a client stuck behind the hot shard never head-of-line
blocks traffic destined for a cold shard at the submission layer (with
mixed per-client streams, the one-outstanding-request client discipline
would serialise hot and cold traffic before it ever reached the system,
masking the server-side pathology this workload exists to expose).  Skew
shows up the way it does in production: most *users* hammer the hot keys.

Everything is seeded and deterministic, so benchmark comparisons between
pipeline configurations replay bit-identical workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..apps.kvstore import get as kv_get
from ..apps.kvstore import put as kv_put
from ..core.system import SimulatedSystem


def skew_key(index: int) -> str:
    """The ``index``-th key of the zero-padded, range-partitionable key space."""
    return f"key-{index:05d}"


def equal_range_boundaries(key_space: int, num_shards: int) -> Tuple[str, ...]:
    """Range-partitioner boundaries splitting ``key_space`` keys into
    ``num_shards`` equal, contiguous ranges (shard 0 owns the lowest --
    hottest -- range)."""
    return tuple(skew_key(key_space * shard // num_shards)
                 for shard in range(1, num_shards))


def hot_range_operations(num_requests: int, *, key_space: int = 64,
                         hot_fraction: float = 0.8,
                         hot_key_fraction: float = 0.25,
                         write_fraction: float = 0.5, value_size: int = 32,
                         seed: int = 0) -> List:
    """The 80/20 hot-range put/get mix.

    With probability ``hot_fraction`` a request targets the hottest
    ``hot_key_fraction`` of the (lexicographically ordered) key space --
    under :func:`equal_range_boundaries` with ``hot_key_fraction = 1 /
    num_shards`` that is exactly shard 0's range -- and otherwise a key
    drawn uniformly from the remainder.
    """
    hot_count = max(1, int(key_space * hot_key_fraction))
    rng = random.Random(seed)
    operations = []
    for _ in range(num_requests):
        if rng.random() < hot_fraction:
            index = rng.randrange(hot_count)
        else:
            index = hot_count + rng.randrange(key_space - hot_count)
        key = skew_key(index)
        if rng.random() < write_fraction:
            operations.append(kv_put(key, "v" * value_size))
        else:
            operations.append(kv_get(key))
    return operations


def migrating_hot_range_operations(num_requests: int, *, key_space: int = 64,
                                   num_phases: int = 3,
                                   hot_fraction: float = 0.8,
                                   hot_key_fraction: float = 0.25,
                                   write_fraction: float = 0.5,
                                   value_size: int = 32,
                                   seed: int = 0) -> List:
    """A hotspot that *moves*: the rebalancer's worst honest adversary.

    The request stream is divided into ``num_phases`` equal phases; within
    each phase, ``hot_fraction`` of the requests target one contiguous
    ``hot_key_fraction`` window of the key space, and the window shifts to a
    different region every phase (phase ``p`` starts at offset ``p *
    key_space / num_phases``).  Static boundaries serialise every phase
    behind whichever shard owns the current window; a rebalancer must keep
    splitting the live hotspot apart -- and re-merging the ranges the
    hotspot abandoned -- to keep all clusters busy.
    """
    hot_count = max(1, int(key_space * hot_key_fraction))
    per_phase = max(1, num_requests // num_phases)
    rng = random.Random(seed)
    operations = []
    for index in range(num_requests):
        phase = min(index // per_phase, num_phases - 1)
        offset = key_space * phase // num_phases
        if rng.random() < hot_fraction:
            key_index = (offset + rng.randrange(hot_count)) % key_space
        else:
            cold = rng.randrange(key_space - hot_count)
            key_index = (offset + hot_count + cold) % key_space
        key = skew_key(key_index)
        if rng.random() < write_fraction:
            operations.append(kv_put(key, "v" * value_size))
        else:
            operations.append(kv_get(key))
    return operations


def zipf_operations(num_requests: int, *, key_space: int = 64,
                    exponent: float = 1.2, write_fraction: float = 0.5,
                    value_size: int = 32, seed: int = 0) -> List:
    """Zipf-distributed put/get mix (rank-``r`` key drawn with weight
    ``1 / r**exponent``); ranks follow key order, so range partitioning
    concentrates the head of the distribution on shard 0."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(key_space)]
    indices = rng.choices(range(key_space), weights=weights, k=num_requests)
    operations = []
    for index in indices:
        key = skew_key(index)
        if rng.random() < write_fraction:
            operations.append(kv_put(key, "v" * value_size))
        else:
            operations.append(kv_get(key))
    return operations


def shard_affine_clients(num_clients: int, num_shards: int, *,
                         hot_shard: int = 0,
                         hot_fraction: float = 0.8) -> List[int]:
    """Assign each client a shard affinity: ``hot_fraction`` of the clients
    work the hot shard, the rest are spread round-robin over the others."""
    hot_clients = max(1, int(round(num_clients * hot_fraction)))
    if num_shards == 1:
        return [hot_shard] * num_clients
    cold_shards = [shard for shard in range(num_shards) if shard != hot_shard]
    affinity = [hot_shard] * hot_clients
    for i in range(num_clients - hot_clients):
        affinity.append(cold_shards[i % len(cold_shards)])
    return affinity


@dataclass(frozen=True)
class SkewWindowResult:
    """Committed throughput measured over a fixed window under live skew."""

    label: str
    duration_ms: float
    committed: int
    committed_per_sec: float
    committed_by_shard: List[int]
    submitted_by_shard: List[int]
    clients_by_shard: List[int]

    def row(self) -> str:
        shards = "/".join(str(count) for count in self.committed_by_shard)
        return (f"{self.label:<26} {self.committed:>7} "
                f"{self.committed_per_sec:>10.1f}   [{shards}]")


def run_ordered_window(system: SimulatedSystem, *, operations: Sequence,
                       duration_ms: float, label: str = "",
                       warmup_ms: float = 200.0) -> SkewWindowResult:
    """Fixed-window driver that preserves the stream's *temporal* structure.

    Operations are dealt round-robin over every client, so each client's
    closed-loop FIFO holds an in-order slice of the stream and the whole
    cohort advances through it roughly in lockstep -- a workload whose
    hotspot migrates over the stream (``migrating_hot_range_operations``)
    therefore migrates over *time* at the servers.  (The shard-affine driver
    below would instead pre-sort the stream into per-shard pools, executing
    all phases concurrently and erasing the very migration a rebalancer
    reacts to.)  Measurement matches :func:`run_skew_window`: per-shard
    executed-request deltas over a fixed window after warmup.
    """
    router = getattr(system, "router", None)
    if router is None:
        raise ValueError("run_ordered_window needs a sharded system (no router)")
    num_shards = router.num_shards
    num_clients = len(system.clients)
    submitted_by_shard = [0] * num_shards
    for index, operation in enumerate(operations):
        system.submit(operation, client_index=index % num_clients)
        submitted_by_shard[router.shard_of_operation(operation, epoch=0)] += 1

    system.run(warmup_ms)
    executed_before = list(system.requests_executed_by_shard())
    system.run(duration_ms)
    executed_after = list(system.requests_executed_by_shard())
    committed_by_shard = [after - before for before, after
                          in zip(executed_before, executed_after)]
    committed = sum(committed_by_shard)
    return SkewWindowResult(
        label=label,
        duration_ms=duration_ms,
        committed=committed,
        committed_per_sec=1000.0 * committed / max(duration_ms, 1e-9),
        committed_by_shard=committed_by_shard,
        submitted_by_shard=submitted_by_shard,
        clients_by_shard=[num_clients // num_shards] * num_shards,
    )


def run_skew_window(system: SimulatedSystem, *, operations: Sequence,
                    client_shards: Sequence[int], duration_ms: float,
                    label: str = "", warmup_ms: float = 200.0) -> SkewWindowResult:
    """Drive shard-affine closed-loop clients and measure a fixed window.

    ``client_shards[i]`` is client ``i``'s shard affinity; each operation is
    routed to the next client affine to its owning shard (operations whose
    shard has no affine client are dropped from the run).  After
    ``warmup_ms`` of ramp-up the executed-request counters are snapshotted,
    the system runs for ``duration_ms``, and committed-requests/second is
    the per-shard executed delta over the window -- clients still hold
    queued work when the window closes, so the measurement reflects
    steady-state capacity rather than tail-drain time.
    """
    router = getattr(system, "router", None)
    if router is None:
        raise ValueError("run_skew_window needs a sharded system (no router)")
    num_shards = router.num_shards
    pools: List[List[int]] = [[] for _ in range(num_shards)]
    for client_index, shard in enumerate(client_shards):
        pools[shard].append(client_index)
    next_in_pool = [0] * num_shards
    submitted_by_shard = [0] * num_shards
    for operation in operations:
        shard = router.shard_of_operation(operation)
        pool = pools[shard]
        if not pool:
            continue
        client_index = pool[next_in_pool[shard] % len(pool)]
        next_in_pool[shard] += 1
        system.submit(operation, client_index=client_index)
        submitted_by_shard[shard] += 1

    system.run(warmup_ms)
    executed_before = list(system.requests_executed_by_shard())
    system.run(duration_ms)
    executed_after = list(system.requests_executed_by_shard())
    committed_by_shard = [after - before for before, after
                          in zip(executed_before, executed_after)]
    committed = sum(committed_by_shard)
    clients_by_shard = [len(pool) for pool in pools]
    return SkewWindowResult(
        label=label,
        duration_ms=duration_ms,
        committed=committed,
        committed_per_sec=1000.0 * committed / max(duration_ms, 1e-9),
        committed_by_shard=committed_by_shard,
        submitted_by_shard=submitted_by_shard,
        clients_by_shard=clients_by_shard,
    )
