"""The modified Andrew benchmark (Figures 6 and 7 of the paper).

The Andrew benchmark has five phases:

1. recursive subdirectory creation,
2. copying a source tree into the new directories,
3. examining file attributes without reading contents (stat),
4. reading every file,
5. "compiling and linking" -- modelled as reading the sources and writing
   object/output files with per-request compute time.

The paper runs Andrew-500 (500 sequential copies of the benchmark) against a
replicated NFS server.  Absolute completion times depend on hardware the
simulation does not model, so the harness uses a scaled-down tree and a
configurable repetition count; the comparison across configurations (No
replication vs BASE vs privacy firewall, with and without faults) is what
reproduces the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..apps.nfs import (
    nfs_create,
    nfs_getattr,
    nfs_lookup,
    nfs_mkdir,
    nfs_read,
    nfs_readdir,
    nfs_write,
)
from ..core.system import SimulatedSystem
from ..statemachine.interface import Operation

PHASE_NAMES = {
    1: "mkdir tree",
    2: "copy sources",
    3: "stat files",
    4: "read files",
    5: "compile and link",
}


@dataclass(frozen=True)
class AndrewScale:
    """Size of one Andrew iteration (scaled down from the original tree)."""

    directories: int = 4
    files_per_directory: int = 3
    file_size_bytes: int = 2048
    compile_ms_per_file: float = 1.0

    @property
    def total_files(self) -> int:
        return self.directories * self.files_per_directory


@dataclass
class AndrewResult:
    """Per-phase and total completion times (virtual milliseconds)."""

    label: str
    iterations: int
    phase_ms: Dict[int, float] = field(default_factory=dict)

    @property
    def total_ms(self) -> float:
        return sum(self.phase_ms.values())

    def row(self) -> str:
        phases = " ".join(f"{self.phase_ms.get(i, 0.0):>10.1f}" for i in range(1, 6))
        return f"{self.label:<24} {phases} {self.total_ms:>12.1f}"


def andrew_phase_operations(phase: int, iteration: int,
                            scale: AndrewScale) -> List[Operation]:
    """The NFS operations issued by one phase of one Andrew iteration."""
    root = f"/andrew{iteration}"
    operations: List[Operation] = []
    if phase == 1:
        operations.append(nfs_mkdir(root))
        for d in range(scale.directories):
            operations.append(nfs_mkdir(f"{root}/dir{d}"))
    elif phase == 2:
        for d in range(scale.directories):
            for f in range(scale.files_per_directory):
                path = f"{root}/dir{d}/src{f}.c"
                operations.append(nfs_create(path))
                operations.append(nfs_write(path, 0, scale.file_size_bytes,
                                            data=f"source-{iteration}-{d}-{f}"))
    elif phase == 3:
        for d in range(scale.directories):
            operations.append(nfs_readdir(f"{root}/dir{d}"))
            for f in range(scale.files_per_directory):
                operations.append(nfs_getattr(f"{root}/dir{d}/src{f}.c"))
    elif phase == 4:
        for d in range(scale.directories):
            for f in range(scale.files_per_directory):
                operations.append(nfs_read(f"{root}/dir{d}/src{f}.c", 0,
                                           scale.file_size_bytes))
    elif phase == 5:
        for d in range(scale.directories):
            for f in range(scale.files_per_directory):
                source = f"{root}/dir{d}/src{f}.c"
                obj = f"{root}/dir{d}/src{f}.o"
                read = nfs_read(source, 0, scale.file_size_bytes)
                compile_read = Operation(kind=read.kind,
                                         args={**read.args,
                                               "processing_ms": scale.compile_ms_per_file},
                                         body_size=read.body_size,
                                         reply_size=read.reply_size)
                operations.append(compile_read)
                operations.append(nfs_create(obj))
                operations.append(nfs_write(obj, 0, scale.file_size_bytes // 2))
        operations.append(nfs_create(f"{root}/program.out"))
        operations.append(nfs_write(f"{root}/program.out", 0,
                                    scale.file_size_bytes * scale.directories // 2))
    else:
        raise ValueError(f"Andrew has phases 1-5, not {phase}")
    return operations


def run_andrew(system: SimulatedSystem, *, label: str, iterations: int = 2,
               scale: Optional[AndrewScale] = None, client_index: int = 0,
               timeout_ms: float = 600_000.0) -> AndrewResult:
    """Run ``iterations`` sequential Andrew iterations and time each phase."""
    scale = scale or AndrewScale()
    result = AndrewResult(label=label, iterations=iterations)
    for phase in range(1, 6):
        start = system.now
        for iteration in range(iterations):
            for operation in andrew_phase_operations(phase, iteration, scale):
                record = system.invoke(operation, client_index=client_index,
                                       timeout_ms=timeout_ms)
                if record.result.error and phase in (1, 2):
                    # Surfacing setup errors early makes benchmark failures
                    # much easier to diagnose than a cascade of later errors.
                    raise RuntimeError(
                        f"Andrew phase {phase} operation failed: {record.result.error}"
                    )
        result.phase_ms[phase] = system.now - start
    return result
