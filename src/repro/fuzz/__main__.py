"""``python -m repro.fuzz`` -- the Byzantine fuzzing CLI.

Modes:

* ``explore`` -- coverage-guided campaign over one scenario; writes a
  ``FUZZ_REPORT_<scenario>.json`` report and saves the novelty corpus.
  Exit status 1 if a violation was found (the report carries the shrunk
  reproducer and its replay digests).
* ``replay`` -- run one schedule file and print its oracle verdicts; exit 1
  on violation.  This is how a corpus seed downloaded from a CI artifact is
  reproduced locally.
* ``shrink`` -- minimise a violating schedule file to the smallest schedule
  that still violates, and write it next to the input.
* ``corpus-regression`` -- replay every committed corpus seed; exit 1 if any
  replays into a violation (used by PR-time CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .corpus import replay_corpus, save_corpus
from .explorer import explore
from .harness import SCENARIOS, run_schedule
from .schedule import FaultSchedule
from .shrink import shrink


def _load_schedule(path: Path) -> FaultSchedule:
    return FaultSchedule.from_json(Path(path).read_text())


def _write_json(path: Path, data: dict) -> None:
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def cmd_explore(args: argparse.Namespace) -> int:
    def progress(runs, result, novel, coverage):
        status = "VIOLATION" if result.violations else "ok"
        print(f"[{args.scenario}] run {runs}: {status} "
              f"(+{novel} tokens, coverage {coverage}) "
              f"{result.schedule.describe()}")

    report = explore(args.scenario, budget=args.budget, seed=args.seed,
                     num_requests=args.num_requests,
                     weaken_reply_quorum=args.weaken_reply_quorum,
                     disable_forwarding_defence=args.disable_forwarding_defence,
                     time_box_s=args.time_box_s,
                     progress=progress if args.verbose else None)
    if args.corpus_dir:
        paths = save_corpus(Path(args.corpus_dir), report.corpus)
        print(f"saved {len(paths)} corpus seeds to {args.corpus_dir}")
    out = Path(args.out or f"FUZZ_REPORT_{args.scenario}.json")
    _write_json(out, report.to_json_dict())
    print(f"{args.scenario}: {report.runs} schedules, "
          f"coverage {report.coverage}, "
          f"{len(report.findings)} violation(s) -> {out}")
    for finding in report.findings:
        print("VIOLATION:", file=sys.stderr)
        for violation in finding.run.violations:
            print(f"  {violation.oracle}: {violation.detail}", file=sys.stderr)
        print(f"  shrunk to {len(finding.shrunk.schedule.events)} event(s); "
              f"bit-identical replay: {finding.replays_bit_identically}",
              file=sys.stderr)
    return 1 if report.findings else 0


def cmd_replay(args: argparse.Namespace) -> int:
    schedule = _load_schedule(args.schedule)
    result = run_schedule(
        schedule, weaken_reply_quorum=args.weaken_reply_quorum,
        disable_forwarding_defence=args.disable_forwarding_defence)
    if args.out:
        _write_json(Path(args.out), {"mode": "replay",
                                     **result.to_json_dict(),
                                     "pass": result.ok})
    print(f"replay {schedule.describe()}: completed "
          f"{result.completed}/{result.expected}, "
          f"digest {result.replay_digest[:16]}..., "
          f"{len(result.violations)} violation(s)")
    for violation in result.violations:
        print(f"  {violation.oracle}: {violation.detail}", file=sys.stderr)
    return 1 if result.violations else 0


def cmd_shrink(args: argparse.Namespace) -> int:
    schedule = _load_schedule(args.schedule)

    def run(candidate: FaultSchedule):
        return run_schedule(
            candidate, weaken_reply_quorum=args.weaken_reply_quorum,
            disable_forwarding_defence=args.disable_forwarding_defence)

    shrunk = shrink(schedule, run=run)
    out = Path(args.out or str(args.schedule) + ".shrunk")
    _write_json(out, shrunk.schedule.to_json_dict())
    print(f"shrunk {len(schedule.events)} -> {len(shrunk.schedule.events)} "
          f"event(s) in {shrunk.runs} runs -> {out}")
    return 0


def cmd_corpus_regression(args: argparse.Namespace) -> int:
    def progress(done, total, result):
        status = "VIOLATION" if result.violations else "ok"
        print(f"[{done}/{total}] {status} {result.schedule.describe()}")

    report = replay_corpus(Path(args.corpus_dir),
                           progress=progress if args.verbose else None)
    if args.out:
        _write_json(Path(args.out), report.to_json_dict())
    print(f"corpus-regression: {report.seeds} seed(s), "
          f"{'pass' if report.ok else 'FAIL'}")
    for result in report.results:
        for violation in result.violations:
            print(f"  {result.schedule.digest()[:12]}: "
                  f"{violation.oracle}: {violation.detail}", file=sys.stderr)
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Byzantine fuzzing: coverage-guided adversarial "
                    "schedule search with invariant oracles")
    sub = parser.add_subparsers(dest="mode", required=True)

    p_explore = sub.add_parser("explore", help="coverage-guided campaign")
    p_explore.add_argument("--scenario", choices=sorted(SCENARIOS),
                           default="sharded")
    p_explore.add_argument("--budget", type=int, default=50,
                           help="max schedules to execute")
    p_explore.add_argument("--seed", type=int, default=0)
    p_explore.add_argument("--num-requests", type=int, default=40)
    p_explore.add_argument("--time-box-s", type=float, default=None,
                           help="wall-clock cap on the campaign")
    p_explore.add_argument("--corpus-dir", default=None,
                           help="directory to save novelty corpus seeds")
    p_explore.add_argument("--out", default=None,
                           help="report path (default FUZZ_REPORT_<scenario>.json)")
    p_explore.add_argument("--weaken-reply-quorum", action="store_true",
                           help="TEST ONLY: plant the g-instead-of-g+1 reply "
                                "quorum bug the campaign should find")
    p_explore.add_argument("--disable-forwarding-defence", action="store_true",
                           help="TEST ONLY: plant the censoring-primary "
                                "liveness bug (no backup forwarding or "
                                "request deadlines) the bounded-progress "
                                "oracle should find")
    p_explore.add_argument("--verbose", action="store_true")
    p_explore.set_defaults(func=cmd_explore)

    p_replay = sub.add_parser("replay", help="replay one schedule file")
    p_replay.add_argument("schedule", type=Path)
    p_replay.add_argument("--out", default=None)
    p_replay.add_argument("--weaken-reply-quorum", action="store_true")
    p_replay.add_argument("--disable-forwarding-defence", action="store_true")
    p_replay.set_defaults(func=cmd_replay)

    p_shrink = sub.add_parser("shrink", help="minimise a violating schedule")
    p_shrink.add_argument("schedule", type=Path)
    p_shrink.add_argument("--out", default=None)
    p_shrink.add_argument("--weaken-reply-quorum", action="store_true")
    p_shrink.add_argument("--disable-forwarding-defence", action="store_true")
    p_shrink.set_defaults(func=cmd_shrink)

    p_reg = sub.add_parser("corpus-regression",
                           help="replay every committed corpus seed")
    p_reg.add_argument("--corpus-dir", default="benchmarks/fuzz_corpus")
    p_reg.add_argument("--out", default=None)
    p_reg.add_argument("--verbose", action="store_true")
    p_reg.set_defaults(func=cmd_corpus_regression)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
