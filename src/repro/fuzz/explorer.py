"""Coverage-guided exploration of the adversarial schedule space.

The explorer is a classic mutational fuzzing loop adapted to protocol
schedules: maintain a corpus of schedules that each contributed novel
protocol-state coverage (trace-edge / counter-bucket tokens from
:func:`repro.fuzz.harness.compute_fingerprint`), repeatedly pick a corpus
parent, mutate its genome (add/remove/perturb/retarget/demote events, reseed
the workload), run the mutant, and keep it if it reached states no earlier
schedule did.  Any oracle violation stops the campaign: the violating
schedule is shrunk to a minimal reproducer and certified by replaying it
twice bit-identically.

Everything is seeded: the same (scenario, seed, budget) arguments explore the
same schedules in the same order.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults.byzantine import STRATEGIES
from .harness import RunResult, ScenarioSpec, run_schedule, scenario
from .schedule import FaultSchedule, ScheduleEvent
from .shrink import ShrinkResult, shrink

#: Byzantine strategies mutations may assign (ordered mildest to nastiest,
#: which is also the demotion order the shrinker walks)
MUTATION_STRATEGIES = ("silent", "corrupt_reply", "lying_reply")

#: ordering-plane strategies: only meaningful on an agreement node (they
#: transform PRE-PREPAREs), so mutations target them separately
PRIMARY_STRATEGIES = ("slow_primary", "censoring_primary",
                      "equivocating_primary")


def time_horizon_ms(num_requests: int) -> float:
    """Virtual-time horizon mutated event times are drawn from.

    The closed-loop workload completes in a few virtual milliseconds per
    request; genes fired after the last reply are dead weight, so the
    horizon tracks the workload length instead of a fixed constant.
    """
    return 20.0 + 3.0 * num_requests


def random_event(rng: random.Random, spec: ScenarioSpec,
                 num_requests: int) -> ScheduleEvent:
    """Draw one random gene appropriate for the scenario."""
    refs = spec.node_refs()
    kinds = ["crash", "partition", "byzantine", "link_fault"]
    if spec.allows_map_change:
        kinds.append("map_change")
    kind = rng.choice(kinds)
    horizon = time_horizon_ms(num_requests)
    at_ms = round(rng.uniform(0.0, horizon), 1)
    duration = round(rng.uniform(10.0, 2.0 * horizon), 1)
    if kind == "crash":
        # Crashing a client just stalls its own workload; target servers.
        node = rng.choice(refs["agreement"] + refs["execution"])
        return ScheduleEvent(kind="crash", at_ms=at_ms, duration_ms=duration,
                             node=node)
    if kind == "partition":
        a, b = rng.sample(refs["all"], 2)
        return ScheduleEvent(kind="partition", at_ms=at_ms,
                             duration_ms=duration, a=a, b=b)
    if kind == "byzantine":
        # Pick the strategy first: reply attacks need an execution node,
        # ordering-plane attacks an agreement node (a primary attack tap on
        # an execution node would never see a PRE-PREPARE).
        strategy = rng.choice(MUTATION_STRATEGIES + PRIMARY_STRATEGIES)
        if strategy in PRIMARY_STRATEGIES:
            node = rng.choice(refs["agreement"])
        else:
            node = rng.choice(refs["execution"])
        return ScheduleEvent(kind="byzantine", at_ms=at_ms,
                             duration_ms=duration, node=node,
                             strategy=strategy)
    if kind == "link_fault":
        a, b = rng.sample(refs["all"], 2)
        return ScheduleEvent(
            kind="link_fault", at_ms=at_ms, duration_ms=duration, a=a, b=b,
            drop=round(rng.choice([0.0, 0.3, 0.7, 1.0]), 2),
            delay_ms=round(rng.choice([0.0, 5.0, 25.0, 100.0]), 1),
            duplicate=round(rng.choice([0.0, 0.0, 0.5]), 2),
            corrupt=round(rng.choice([0.0, 0.0, 0.3]), 2),
            reorder=round(rng.choice([0.0, 0.0, 0.4]), 2))
    return ScheduleEvent(kind="map_change", at_ms=at_ms,
                         op=rng.choice(["split", "merge"]),
                         key_index=rng.randrange(64),
                         owner=rng.randrange(spec.num_shards))


def mutate(schedule: FaultSchedule, rng: random.Random,
           spec: ScenarioSpec) -> FaultSchedule:
    """One mutation step: grow, cut, or perturb the genome."""
    events = list(schedule.events)
    roll = rng.random()
    if roll < 0.30 or not events:
        events.append(random_event(rng, spec, schedule.num_requests))
    elif roll < 0.45:
        del events[rng.randrange(len(events))]
    elif roll < 0.75:
        index = rng.randrange(len(events))
        event = events[index]
        events[index] = ScheduleEvent(
            kind=event.kind,
            at_ms=round(max(0.0, event.at_ms * rng.uniform(0.5, 1.5)), 1),
            duration_ms=round(max(0.0,
                                  event.duration_ms * rng.uniform(0.5, 1.5)),
                              1),
            node=event.node, a=event.a, b=event.b, strategy=event.strategy,
            drop=event.drop, delay_ms=event.delay_ms,
            duplicate=event.duplicate, corrupt=event.corrupt,
            reorder=event.reorder, op=event.op,
            key_index=event.key_index, owner=event.owner)
    elif roll < 0.85:
        index = rng.randrange(len(events))
        events[index] = random_event(rng, spec, schedule.num_requests)
    elif roll < 0.93:
        # Reseed the run: same faults, different network delays and
        # delivery interleavings (arrival order is part of the search
        # space -- sub-quorum acceptance bugs are order-dependent).
        return FaultSchedule(scenario=schedule.scenario,
                             seed=rng.randrange(1_000_000),
                             workload_seed=schedule.workload_seed,
                             num_requests=schedule.num_requests,
                             events=tuple(events))
    else:
        # Reseed the workload stream: same faults, different traffic.
        return FaultSchedule(scenario=schedule.scenario, seed=schedule.seed,
                             workload_seed=rng.randrange(1_000_000),
                             num_requests=schedule.num_requests,
                             events=tuple(events))
    return schedule.with_events(events)


@dataclass
class Finding:
    """A confirmed violation: original schedule, minimal reproducer, proof."""

    run: RunResult
    shrunk: ShrinkResult
    replay_digests: List[str]

    @property
    def replays_bit_identically(self) -> bool:
        return len(set(self.replay_digests)) == 1

    def to_json_dict(self) -> Dict:
        return {
            "violations": [v.to_json_dict() for v in self.run.violations],
            "schedule": self.run.schedule.to_json_dict(),
            "shrunk_schedule": self.shrunk.schedule.to_json_dict(),
            "shrunk_violations": [v.to_json_dict()
                                  for v in self.shrunk.result.violations],
            "shrink_runs": self.shrunk.runs,
            "replay_digests": self.replay_digests,
            "replays_bit_identically": self.replays_bit_identically,
        }


@dataclass
class ExploreReport:
    """Outcome of one exploration campaign."""

    scenario: str
    seed: int
    runs: int
    coverage: int
    coverage_history: List[int]
    corpus: List[FaultSchedule]
    findings: List[Finding]
    time_boxed: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json_dict(self) -> Dict:
        return {
            "mode": "explore",
            "scenario": self.scenario,
            "seed": self.seed,
            "runs": self.runs,
            "coverage": self.coverage,
            "coverage_history": self.coverage_history,
            "corpus": [schedule.to_json_dict() for schedule in self.corpus],
            "violations": [finding.to_json_dict()
                           for finding in self.findings],
            "time_boxed": self.time_boxed,
            "pass": self.ok,
        }


def seed_schedules(scenario_name: str, num_requests: int) -> List[FaultSchedule]:
    """Archetype schedules the corpus starts from (one per fault family)."""
    spec = scenario(scenario_name)
    base = FaultSchedule(scenario=scenario_name, num_requests=num_requests)
    refs = spec.node_refs()
    horizon = time_horizon_ms(num_requests)
    archetypes = [
        base,  # the benign schedule: baseline coverage
        base.with_events([ScheduleEvent(kind="crash", at_ms=10.0,
                                        duration_ms=horizon,
                                        node=refs["execution"][0])]),
        base.with_events([ScheduleEvent(kind="byzantine", at_ms=0.0,
                                        duration_ms=4.0 * horizon,
                                        node=refs["execution"][0],
                                        strategy="lying_reply")]),
        base.with_events([ScheduleEvent(kind="link_fault", at_ms=5.0,
                                        duration_ms=horizon,
                                        a=refs["agreement"][0],
                                        b=refs["execution"][0], drop=0.7)]),
    ]
    if spec.allows_map_change:
        archetypes.append(base.with_events([
            ScheduleEvent(kind="map_change", at_ms=15.0, op="split",
                          key_index=16, owner=1),
            ScheduleEvent(kind="crash", at_ms=20.0, duration_ms=horizon,
                          node=refs["execution"][0]),
        ]))
    # Ordering-plane archetypes (appended last so earlier campaigns' run
    # ordering -- and the planted-bug discovery points -- stay stable):
    # attack the initial primary directly.
    archetypes.extend([
        base.with_events([ScheduleEvent(kind="byzantine", at_ms=0.0,
                                        duration_ms=4.0 * horizon,
                                        node=refs["agreement"][0],
                                        strategy="equivocating_primary")]),
        base.with_events([ScheduleEvent(kind="byzantine", at_ms=0.0,
                                        duration_ms=4.0 * horizon,
                                        node=refs["agreement"][0],
                                        strategy="censoring_primary")]),
    ])
    return archetypes


def explore(scenario_name: str, *, budget: int = 50, seed: int = 0,
            num_requests: int = 40, weaken_reply_quorum: bool = False,
            disable_forwarding_defence: bool = False,
            time_box_s: Optional[float] = None,
            run_budget_ms: float = 8000.0,
            progress=None) -> ExploreReport:
    """Run one coverage-guided campaign of up to ``budget`` schedules.

    Stops early on the first confirmed (shrunk + twice-replayed) violation,
    or when the optional wall-clock ``time_box_s`` expires.  Coverage is
    cumulative over the campaign; ``coverage_history`` records its size
    after every run so "strictly growing fingerprints" is checkable from
    the report alone.
    """
    spec = scenario(scenario_name)
    rng = random.Random(seed)
    coverage: set = set()
    coverage_history: List[int] = []
    corpus: List[FaultSchedule] = []
    findings: List[Finding] = []
    started = time.monotonic()
    time_boxed = False

    def run_one(schedule: FaultSchedule) -> RunResult:
        return run_schedule(
            schedule, weaken_reply_quorum=weaken_reply_quorum,
            disable_forwarding_defence=disable_forwarding_defence,
            budget_ms=run_budget_ms)

    queue = seed_schedules(scenario_name, num_requests)
    runs = 0
    while runs < budget:
        if time_box_s is not None and time.monotonic() - started > time_box_s:
            time_boxed = True
            break
        if queue:
            candidate = queue.pop(0)
        else:
            parent = corpus[rng.randrange(len(corpus))] if corpus else \
                FaultSchedule(scenario=scenario_name,
                              num_requests=num_requests)
            candidate = mutate(parent, rng, spec)
        if candidate.validate():
            continue
        result = run_one(candidate)
        runs += 1
        novel = result.fingerprint - coverage
        coverage |= result.fingerprint
        coverage_history.append(len(coverage))
        if progress is not None:
            progress(runs, result, len(novel), len(coverage))
        if result.violations:
            shrunk = shrink(candidate, run=run_one)
            replays = [run_one(shrunk.schedule).replay_digest
                       for _ in range(2)]
            findings.append(Finding(run=result, shrunk=shrunk,
                                    replay_digests=replays))
            break
        if novel:
            corpus.append(candidate)
    return ExploreReport(scenario=scenario_name, seed=seed, runs=runs,
                         coverage=len(coverage),
                         coverage_history=coverage_history, corpus=corpus,
                         findings=findings, time_boxed=time_boxed)
