"""Invariant oracles: reusable post-run assertions over a simulated system.

These promote the safety checks that were buried in individual tests and
workload audits into first-class oracles any harness can run after any
execution -- benign or adversarial.  Each oracle inspects the *final* state
of a (quiesced) system plus the clients' completed-request records and
reports violations; it never mutates the system.

The oracles are deliberately conservative: they flag only states that are
unsafe under the paper's fault assumptions (at most ``g`` Byzantine
execution nodes per shard, ``f`` agreement nodes), never states that are
merely slow or incomplete.  An execution cut short by its budget is reported
as *incomplete* by the harness, not as an oracle violation.

* :class:`ExactlyOnceOracle` -- no client request is answered twice or with
  two different identities, and no completed request was lost by every
  execution cluster (exactly-once across epoch cuts and handoffs);
* :class:`ReplyTableAuditOracle` -- equally-advanced replicas of a cluster
  agree on application state, and the value each client *accepted* matches
  the value the owning cluster's reply tables *recorded* -- the check that
  catches a lying reply accepted below quorum;
* :class:`SnapshotConsistencyOracle` -- multi-shard snapshot reads are never
  torn and conflict transactions never commit (wraps the cross-shard
  workload audit);
* :class:`EpochCutSafetyOracle` -- every role's partition-map epoch cursor
  points into the agreed, contiguous map history.

Safety oracles flag states; *liveness* needs a time reference -- a run that
has not finished yet is not a violation unless it had every chance to.
:class:`RunContext` carries that reference (when the last fault healed, when
the run ended), and :class:`BoundedProgressOracle` uses it to demand that
every request submitted before quiescence completes within a bounded horizon
after the last fault heals.  :class:`NoProgressDetector` is the mid-campaign
companion: sampled by the harness's drive loop, it records the longest
interval with zero completions, a coverage signal and a stall diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..util.ids import Role
from ..workloads.crossshard import (
    audit_cross_group_consistency,
    audit_snapshot_consistency,
)


@dataclass(frozen=True)
class RunContext:
    """Per-run facts liveness oracles need that the system cannot know.

    ``healed_at_ms`` is the virtual time the harness healed the last fault
    (crash recovery, partition heal, Byzantine uninstall); ``final_time_ms``
    is when the run ended; ``expected``/``completed`` count the requests
    submitted before quiescence and those that finished.
    """

    healed_at_ms: float = 0.0
    final_time_ms: float = 0.0
    expected: int = 0
    completed: int = 0


@dataclass(frozen=True)
class OracleViolation:
    """One invariant breach, attributed to the oracle that found it."""

    oracle: str
    detail: str

    def to_json_dict(self) -> dict:
        return {"oracle": self.oracle, "detail": self.detail}


class Oracle:
    """Base class: a named post-run invariant check."""

    name = "oracle"

    def check(self, system, *, completed_all: bool = True,
              context: Optional[RunContext] = None) -> List[OracleViolation]:
        raise NotImplementedError

    def _violation(self, detail: str) -> OracleViolation:
        return OracleViolation(oracle=self.name, detail=detail)


def _remote_records(client):
    """Completed records that actually crossed the wire (local failures --
    e.g. cross-shard ops over the key cap -- never reached a replica)."""
    return [record for record in client.completed if record.result.error is None]


class ExactlyOnceOracle(Oracle):
    """Every request completes at most once, and nothing completed is lost.

    The reply table's purpose (and its migration across epoch cuts) is that
    a retransmitted request re-serves the cached reply instead of executing
    again.  Duplicate completions at a client, or non-monotone completion
    timestamps, mean a request executed (or was answered) twice.  A
    completed count exceeding what the execution clusters report executed
    means a client accepted a reply no cluster stands behind.
    """

    name = "exactly-once"

    def check(self, system, *, completed_all: bool = True,
              context: Optional[RunContext] = None) -> List[OracleViolation]:
        violations: List[OracleViolation] = []
        total_remote = 0
        for client in system.clients:
            seen = set()
            last_timestamp = 0
            for record in client.completed:
                key = record.timestamp
                if key in seen:
                    violations.append(self._violation(
                        f"{client.node_id} completed timestamp {key} twice"))
                seen.add(key)
                if record.timestamp <= last_timestamp:
                    violations.append(self._violation(
                        f"{client.node_id} completions out of timestamp order "
                        f"({record.timestamp} after {last_timestamp})"))
                last_timestamp = max(last_timestamp, record.timestamp)
            total_remote += len(_remote_records(client))
            # Cross-shard operations complete through the collation path;
            # the per-cluster executed counters account for their markers
            # differently, so only ordinary completions are comparable.
            total_remote -= getattr(client, "cross_shard_completed", 0)
        executed = getattr(system, "total_requests_executed", None)
        if executed is not None and completed_all:
            total_executed = executed()
            if total_executed < total_remote:
                violations.append(self._violation(
                    f"clients completed {total_remote} ordinary remote "
                    f"requests but execution clusters only executed "
                    f"{total_executed} (a reply was accepted that no "
                    "cluster executed)"))
        return violations


class ReplyTableAuditOracle(Oracle):
    """Client-accepted values must match the owning cluster's reply tables.

    Two layers:

    1. *Replica agreement*: replicas of one cluster that have executed the
       same prefix (equal ``max_executed``) are deterministic state machines
       over the same agreed order, so their application state digests must
       be identical.  (Byzantine *taps* corrupt messages in flight, never
       the node's own state, so even a liar's internal state is correct.)
    2. *Client-vs-table audit*: for each client's last completed remote
       request, every non-crashed replica of the owning cluster whose reply
       table holds an entry for that exact timestamp recorded the result it
       vouched for.  If any such entry disagrees with the value the client
       accepted, the client accepted a lie -- unless ``g + 1`` replicas
       actually support the accepted value (which the fault model rules
       out for disagreeing correct replicas).
    """

    name = "reply-table-audit"

    def check(self, system, *, completed_all: bool = True,
              context: Optional[RunContext] = None) -> List[OracleViolation]:
        violations: List[OracleViolation] = []
        clusters = getattr(system, "shard_execution_nodes", None)
        if clusters is None:
            clusters = [system.execution_nodes]
        for shard, cluster in enumerate(clusters):
            frontiers = {}
            for node in cluster:
                if node.crashed:
                    continue
                frontiers.setdefault(node.max_executed, []).append(node)
            for frontier, nodes in frontiers.items():
                digests = {node.app.state_digest() for node in nodes}
                if len(digests) > 1:
                    violations.append(self._violation(
                        f"shard {shard}: replicas at max_executed={frontier} "
                        f"diverge ({len(digests)} distinct state digests)"))
        violations.extend(self._audit_clients(system, clusters))
        return violations

    def _audit_clients(self, system, clusters) -> List[OracleViolation]:
        violations: List[OracleViolation] = []
        router = getattr(system, "router", None)
        for client in system.clients:
            audited = set()
            for record in reversed(_remote_records(client)):
                cluster = self._owning_cluster(system, router, clusters,
                                               record)
                if cluster is None or id(cluster) in audited:
                    continue
                # Each cluster's reply table holds one entry per client --
                # its *latest* reply -- so the newest record per owning
                # cluster is the one with a table entry to audit against.
                audited.add(id(cluster))
                violations.extend(self._audit_record(system, client, cluster,
                                                     record))
        return violations

    def _audit_record(self, system, client, cluster, record):
        violations: List[OracleViolation] = []
        quorum = system.config.reply_quorum
        accepted = record.result.value
        agree = disagree = 0
        recorded_values = set()
        for node in cluster:
            if node.crashed:
                continue
            entry = node.reply_table.get(client.node_id)
            if entry is None or entry.timestamp != record.timestamp:
                continue
            value = entry.result_for(Role.CLIENT).value
            if value == accepted:
                agree += 1
            else:
                disagree += 1
                recorded_values.add(repr(value))
        if disagree and agree < quorum:
            violations.append(self._violation(
                f"{client.node_id} accepted {accepted!r} for timestamp "
                f"{record.timestamp} but the owning cluster's reply "
                f"tables recorded {sorted(recorded_values)} "
                f"({agree} replicas support the accepted value, "
                f"quorum is {quorum})"))
        return violations

    def _owning_cluster(self, system, router, clusters, record):
        """The cluster whose reply table should hold the record (None when
        the request is not single-shard-auditable, e.g. cross-shard ops
        whose tables hold a placeholder, not the collated result)."""
        if router is None:
            return clusters[0] if len(clusters) == 1 else None
        try:
            shards = router.shards_of_operation_keys(record.operation, epoch=None)
        except (KeyError, AttributeError):
            return None
        if len(shards) != 1:
            return None
        value = record.result.value
        if isinstance(value, dict) and ("values" in value or "committed" in value):
            # Completed through the cross-shard collation path; the reply
            # table holds the sub-reply placeholder, not this value.
            return None
        return clusters[shards[0]]


class SnapshotConsistencyOracle(Oracle):
    """Multi-shard reads are untorn; conflict transactions never commit.

    On a multi-log system the untorn promise is *per log group*:
    independent agreement logs may order two concurrent cross-group
    markers inversely (serialising them is the deferred MVBA cut-ordering
    follow-up), so only stamps served by shards of one log must agree.
    """

    name = "snapshot-consistency"

    def check(self, system, *, completed_all: bool = True,
              context: Optional[RunContext] = None) -> List[OracleViolation]:
        log_registry = getattr(system, "log_registry", None)
        if log_registry is not None:
            partitioner = system.router.partitioner

            def shard_of_key(key):
                if not key.endswith("-x-aud"):
                    return None
                return partitioner.shard_of_key(key)

            audit = audit_cross_group_consistency(
                system.clients, shard_of_key=shard_of_key,
                log_of_shard=lambda shard: log_registry.latest.log_of(shard))
        else:
            audit = audit_snapshot_consistency(system.clients)
        violations: List[OracleViolation] = []
        if audit.torn_reads:
            violations.append(self._violation(
                f"{audit.torn_reads}/{audit.audited_reads} multi-shard "
                "snapshot reads saw unequal audit stamps (torn snapshot)"))
        if audit.conflict_commits:
            violations.append(self._violation(
                f"{audit.conflict_commits} conflict transactions committed "
                "(read validation must abort them on every replica)"))
        return violations


class EpochCutSafetyOracle(Oracle):
    """Every epoch cursor points into the agreed, contiguous map history.

    The partition map evolves only through agreed config operations, so
    after quiescing: the registry's epochs are contiguous from 0; every
    agreement router, execution replica, and client holds an epoch the
    registry knows; and at least one agreement router reached the latest
    agreed epoch (the history is not dark).
    """

    name = "epoch-cut-safety"

    def check(self, system, *, completed_all: bool = True,
              context: Optional[RunContext] = None) -> List[OracleViolation]:
        router = getattr(system, "router", None)
        if router is None:
            return []
        registry = getattr(router.partitioner, "registry", None)
        if registry is None:
            return []
        violations: List[OracleViolation] = []
        latest = registry.latest_epoch
        for epoch in range(latest + 1):
            if not registry.has_epoch(epoch):
                violations.append(self._violation(
                    f"map history has a gap at epoch {epoch}"))
        queues = getattr(system, "message_queues", [])
        for queue in queues:
            if not registry.has_epoch(queue.epoch):
                violations.append(self._violation(
                    f"{queue.owner.node_id} router at unknown epoch "
                    f"{queue.epoch} (latest agreed: {latest})"))
        if queues and completed_all and all(queue.epoch < latest
                                            for queue in queues):
            violations.append(self._violation(
                f"no agreement router reached the latest agreed epoch "
                f"{latest}"))
        for cluster in getattr(system, "shard_execution_nodes", []):
            for node in cluster:
                if node.crashed:
                    continue
                if not registry.has_epoch(node.epoch):
                    violations.append(self._violation(
                        f"{node.node_id} at unknown epoch {node.epoch}"))
        for client in system.clients:
            epoch = getattr(client, "epoch", 0)
            if not registry.has_epoch(epoch):
                violations.append(self._violation(
                    f"{client.node_id} at unknown epoch {epoch}"))
        return violations


class BoundedProgressOracle(Oracle):
    """Every request submitted before quiescence completes within a bounded
    horizon after the last fault heals.

    This is the liveness property the censorship-resistant request path
    exists to guarantee: once the network is reliable again and every
    Byzantine window has closed, retransmission fan-out, backup forwarding,
    and view-change escalation must drive every outstanding request to
    completion.  A run that is merely *slow* is not flagged -- only one
    that was given at least ``horizon_ms`` of healed time and still left
    requests starving.  Without a :class:`RunContext` the oracle is inert
    (a plain safety battery cannot judge liveness).
    """

    name = "bounded-progress"

    def __init__(self, horizon_ms: float = 1500.0) -> None:
        self.horizon_ms = horizon_ms

    def check(self, system, *, completed_all: bool = True,
              context: Optional[RunContext] = None) -> List[OracleViolation]:
        if context is None or completed_all:
            return []
        healed_for = context.final_time_ms - context.healed_at_ms
        if healed_for < self.horizon_ms:
            return []
        return [self._violation(
            f"{context.expected - context.completed} of {context.expected} "
            f"requests still incomplete {healed_for:.0f}ms after the last "
            f"fault healed (liveness horizon: {self.horizon_ms:.0f}ms) -- "
            "the censorship-resistant request path failed to restore "
            "progress")]


class NoProgressDetector:
    """Mid-run stall tracker: the longest interval with zero completions.

    The harness's drive loop calls :meth:`sample` once per step; the
    detector records the longest span of virtual time during which the
    completed count did not move.  It is a *detector*, not an oracle: a
    long stall during an active fault window is expected, so the value
    feeds the coverage fingerprint and the run stats (where the explorer
    can see "this schedule produced a 3s blackout") rather than directly
    raising violations.
    """

    def __init__(self) -> None:
        self._last_completed: Optional[int] = None
        self._stall_started_ms = 0.0
        self.longest_stall_ms = 0.0

    def sample(self, now_ms: float, completed: int) -> None:
        if self._last_completed is None or completed > self._last_completed:
            self._last_completed = completed
            self._stall_started_ms = now_ms
            return
        self.longest_stall_ms = max(self.longest_stall_ms,
                                    now_ms - self._stall_started_ms)


#: the default oracle battery the harness runs after every schedule
DEFAULT_ORACLES = (ExactlyOnceOracle(), ReplyTableAuditOracle(),
                   SnapshotConsistencyOracle(), EpochCutSafetyOracle(),
                   BoundedProgressOracle())


def run_oracles(system, *, completed_all: bool = True,
                context: Optional[RunContext] = None,
                oracles=DEFAULT_ORACLES) -> List[OracleViolation]:
    """Run every oracle; returns all violations (empty = invariants hold)."""
    violations: List[OracleViolation] = []
    for oracle in oracles:
        violations.extend(oracle.check(system, completed_all=completed_all,
                                       context=context))
    return violations
