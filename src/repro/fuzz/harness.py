"""Schedule execution harness: build a scenario, install a genome, audit it.

:func:`run_schedule` is the single entry point everything else (explorer,
shrinker, corpus regression, CLI, tests) goes through: it constructs the
named scenario's :class:`~repro.sharding.system.ShardedSystem`, resolves the
schedule's symbolic node references, installs every event through the
:class:`~repro.faults.injector.FaultInjector`, drives the workload, quiesces
(recover/heal/uninstall everything), lets replies settle, and returns a
:class:`RunResult` carrying the oracle verdicts, the protocol-state coverage
fingerprint, and a replay digest.

Determinism contract: the simulator's virtual time, RNG streams, and trace
stream are fully determined by (scenario, seed, workload_seed, events), so
two runs of the same schedule in the same build produce byte-identical
replay digests -- the property the shrinker relies on to certify a minimal
reproducer.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..apps.kvstore import KeyValueStore, get as kv_get, put as kv_put
from ..config import (
    CryptoCosts,
    CrossShardConfig,
    MultiLogConfig,
    ObservabilityConfig,
    PipelineConfig,
    RebalanceConfig,
    ShardingConfig,
    SystemConfig,
    TimerConfig,
)
from ..faults import FaultInjector, FaultPlan, make_behaviour
from ..multilog import MultiLogSystem
from ..net.faults import LinkFault
from ..sharding.messages import MapChange
from ..sharding.system import ShardedSystem
from ..workloads.crossshard import (
    mixed_cross_group_operations,
    mixed_cross_shard_operations,
    seed_operations,
)
from ..workloads.skew import equal_range_boundaries, skew_key
from .oracles import (
    NoProgressDetector,
    OracleViolation,
    RunContext,
    run_oracles,
)
from .schedule import FaultSchedule, ScheduleEvent

#: key space every scenario partitions (matches the skew/rebalance workloads)
KEY_SPACE = 64

#: short timers so adversarial windows resolve quickly in virtual time
_TIMERS = TimerConfig(client_retransmit_ms=80.0, agreement_retransmit_ms=40.0,
                      execution_fetch_ms=20.0, view_change_ms=200.0,
                      batch_timeout_ms=1.0)

#: cheap crypto so a fuzzing campaign gets through many schedules
_CRYPTO = CryptoCosts(mac_ms=0.05, signature_sign_ms=0.5,
                      signature_verify_ms=0.1, threshold_share_ms=1.0,
                      threshold_combine_ms=0.2, threshold_verify_ms=0.1)

#: rebalance wiring (cross-shard links, handoff machinery) without automatic
#: proposals -- map changes are driven by schedule events for determinism
_MANUAL_REBALANCE = RebalanceConfig(enabled=True, min_window_requests=10**9)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named system shape + workload the explorer can aim schedules at."""

    name: str
    num_shards: int = 2
    num_clients: int = 3
    rebalance: bool = False
    cross_shard: bool = False
    #: > 1 builds a MultiLogSystem partitioning the ordering plane
    num_logs: int = 1

    @property
    def allows_map_change(self) -> bool:
        return self.rebalance

    def make_config(self) -> SystemConfig:
        return SystemConfig(
            f=1, g=1, h=1, num_clients=self.num_clients, pipeline_depth=16,
            checkpoint_interval=8, bundle_size=1, timers=_TIMERS,
            crypto=_CRYPTO,
            multilog=MultiLogConfig(num_logs=self.num_logs),
            sharding=ShardingConfig(
                num_shards=self.num_shards, strategy="range",
                range_boundaries=equal_range_boundaries(KEY_SPACE,
                                                        self.num_shards)),
            pipeline=PipelineConfig(per_shard_depth=16,
                                    ooo_shard_delivery=True, rtt_gather=True),
            rebalance=_MANUAL_REBALANCE if self.rebalance else RebalanceConfig(),
            cross_shard=CrossShardConfig(enabled=self.cross_shard),
            observability=ObservabilityConfig(metrics=True, tracing=True),
        )

    def seed_prefix(self) -> List:
        """Setup operations that must complete before faults start.

        The cross-shard audit invariant (equal audit stamps at every cut)
        only holds once the per-shard seed puts have all landed -- they are
        independent single-shard writes, so racing them against multi-shard
        reads would report torn snapshots that are workload artifacts, not
        protocol violations.  The benchmark sequences them the same way.
        """
        if self.cross_shard:
            return seed_operations(KEY_SPACE, self.num_shards)
        return []

    def make_operations(self, workload_seed: int, num_requests: int) -> List:
        rng = random.Random(workload_seed)
        operations: List = []
        if self.num_logs > 1:
            # Cross-group mix: multi-shard markers span log groups, so the
            # schedule races bindings, cuts, and fallover against faults.
            return mixed_cross_group_operations(
                num_requests, key_space=KEY_SPACE, num_shards=self.num_shards,
                multi_fraction=0.25, seed=workload_seed)
        if self.cross_shard:
            return mixed_cross_shard_operations(
                num_requests, key_space=KEY_SPACE, num_shards=self.num_shards,
                multi_fraction=0.25, seed=workload_seed)
        for index in range(num_requests):
            key = skew_key(rng.randrange(KEY_SPACE))
            if rng.random() < 0.5:
                operations.append(kv_put(key, f"v{index}"))
            else:
                operations.append(kv_get(key))
        return operations

    def node_refs(self) -> Dict[str, List[str]]:
        """The symbolic node vocabulary mutations may draw targets from."""
        config = self.make_config()
        agreement = [f"agreement:{i}"
                     for i in range(config.num_agreement_nodes
                                    * max(1, self.num_logs))]
        execution = [f"execution:{shard}:{j}"
                     for shard in range(self.num_shards)
                     for j in range(config.num_execution_nodes)]
        clients = [f"client:{i}" for i in range(self.num_clients)]
        return {"agreement": agreement, "execution": execution,
                "clients": clients, "all": agreement + execution + clients}


SCENARIOS: Dict[str, ScenarioSpec] = {
    # static range-sharded deployment: crash/partition/Byzantine/link faults
    "sharded": ScenarioSpec(name="sharded"),
    # rebalance wiring live: map_change events race handoffs and cuts
    "rebalance": ScenarioSpec(name="rebalance", rebalance=True),
    # cross-shard markers + rebalance: votes, collations, and cuts race
    "crossshard": ScenarioSpec(name="crossshard", rebalance=True,
                               cross_shard=True),
    # two agreement logs over four shards: cross-group markers, cross-log
    # bindings/cuts, and log_move reconfiguration race the fault genome
    "multilog": ScenarioSpec(name="multilog", num_shards=4, num_logs=2,
                             cross_shard=True),
}


def scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r} "
                         f"(known: {sorted(SCENARIOS)})") from None


def resolve_node(system: ShardedSystem, ref: str):
    """Resolve a symbolic node reference against a built system."""
    parts = ref.split(":")
    try:
        if parts[0] == "agreement":
            return system.agreement_ids[int(parts[1])]
        if parts[0] == "execution":
            return system.shard_execution_ids[int(parts[1])][int(parts[2])]
        if parts[0] == "client":
            return system.client_ids[int(parts[1])]
    except (IndexError, ValueError):
        pass
    raise ValueError(f"unresolvable node reference {ref!r}")


@dataclass
class RunResult:
    """Everything one schedule execution produced."""

    schedule: FaultSchedule
    completed: int
    expected: int
    completed_all: bool
    violations: List[OracleViolation]
    fingerprint: frozenset
    replay_digest: str
    final_time_ms: float
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json_dict(self) -> Dict:
        return {
            "schedule": self.schedule.to_json_dict(),
            "schedule_digest": self.schedule.digest(),
            "completed": self.completed,
            "expected": self.expected,
            "completed_all": self.completed_all,
            "violations": [v.to_json_dict() for v in self.violations],
            "fingerprint_size": len(self.fingerprint),
            "replay_digest": self.replay_digest,
            "final_time_ms": self.final_time_ms,
            "stats": self.stats,
        }


def _install_map_change(system: ShardedSystem, event: ScheduleEvent) -> None:
    """Fire a split/merge proposal at the event's virtual time.

    The proposal is resolved against the *live* map (parent epoch, boundary
    set) when the event fires, so mutated timings race real cut machinery
    rather than failing structural validation.  Proposals the primary
    rejects (one config op already in flight, no splittable boundary) are
    silently dropped -- a no-op gene, not an error.
    """
    def fire() -> None:
        registry = getattr(system.router.partitioner, "registry", None)
        if registry is None:
            return
        primary = None
        for replica in system.agreement_replicas:
            if not replica.crashed and replica.is_primary:
                primary = replica
                break
        if primary is None:
            return
        parent = registry.latest_epoch
        latest = registry.latest
        if event.op == "split":
            change = MapChange(kind="split", parent_epoch=parent,
                               key=skew_key(event.key_index % KEY_SPACE),
                               owner=event.owner % system.num_shards)
        else:
            boundaries = latest.boundaries
            if not boundaries:
                return
            change = MapChange(kind="merge", parent_epoch=parent,
                               key=boundaries[event.key_index % len(boundaries)])
        try:
            primary.propose_map_change(change)
        except Exception:
            # A racing proposal may be structurally stale by fire time;
            # adversarial schedules treat that as a no-op gene.
            pass

    system.scheduler.call_at(system.now + event.at_ms, fire,
                             label="fuzz:map_change")


def _install_log_move(system, event: ScheduleEvent) -> None:
    """Fire a shard-between-log-groups move at the event's virtual time.

    Resolved against the live log map when the event fires; proposals the
    driver's preconditions reject (a previous change still cutting, a
    primary mid-view-change, the shard already owned by the target) are
    silently dropped -- a no-op gene, like a structurally stale map_change.
    On single-log systems the gene is always a no-op.
    """
    propose = getattr(system, "propose_log_map_change", None)
    if propose is None:
        return

    def fire() -> None:
        shard = event.key_index % system.num_shards
        target = event.owner % system.num_logs
        try:
            propose(shard, target)
        except Exception:
            pass

    system.scheduler.call_at(system.now + event.at_ms, fire,
                             label="fuzz:log_move")


def install_schedule(system: ShardedSystem,
                     schedule: FaultSchedule) -> FaultInjector:
    """Install every schedule event; returns the injector (for healing)."""
    injector = FaultInjector(system)
    plan = FaultPlan()
    for event in schedule.events:
        if event.kind == "crash":
            node = resolve_node(system, event.node)
            plan.crash(node, at_ms=event.at_ms)
            if event.duration_ms > 0:
                plan.recover(node, at_ms=event.at_ms + event.duration_ms)
        elif event.kind == "partition":
            a = resolve_node(system, event.a)
            b = resolve_node(system, event.b)
            plan.partition(a, b, at_ms=event.at_ms)
            if event.duration_ms > 0:
                plan.heal(a, b, at_ms=event.at_ms + event.duration_ms)
        elif event.kind == "byzantine":
            node = resolve_node(system, event.node)
            behaviour = make_behaviour(event.strategy, node)
            until = (event.at_ms + event.duration_ms
                     if event.duration_ms > 0 else None)
            plan.byzantine(behaviour, at_ms=event.at_ms, until_ms=until)
        elif event.kind == "link_fault":
            src = resolve_node(system, event.a)
            dst = resolve_node(system, event.b)
            fault = LinkFault(drop_probability=event.drop,
                              extra_delay_ms=event.delay_ms,
                              duplicate_probability=event.duplicate,
                              corrupt_probability=event.corrupt,
                              reorder_probability=event.reorder)
            until = (event.at_ms + event.duration_ms
                     if event.duration_ms > 0 else None)
            plan.link_fault(src, dst, fault, at_ms=event.at_ms, until_ms=until)
        elif event.kind == "map_change":
            _install_map_change(system, event)
        elif event.kind == "log_move":
            _install_log_move(system, event)
    injector.install(plan)
    return injector


def _bucket(value: int) -> int:
    """Log2 bucket, so counter fingerprints are scale- not noise-sensitive."""
    return value.bit_length()


def _system_counters(system: ShardedSystem) -> Dict[str, int]:
    registry = getattr(system.router.partitioner, "registry", None)
    counters = {
        "epoch": registry.latest_epoch if registry is not None else 0,
        "epoch_cuts": sum(queue.epoch_cuts for queue in system.message_queues),
        "view": max(replica.view for replica in system.agreement_replicas),
        "view_changes": sum(replica.view_changes_completed
                            for replica in system.agreement_replicas),
        "deposed": sum(replica.primaries_deposed
                       for replica in system.agreement_replicas),
        "checkpoint_syncs": sum(replica.checkpoint_syncs
                                for replica in system.agreement_replicas),
        "retransmissions": sum(client.retransmissions
                               for client in system.clients),
        "misrouted": sum(client.misrouted_replies for client in system.clients),
        "epoch_advances": sum(client.epoch_advances
                              for client in system.clients),
        "cross_retries": sum(client.cross_shard_retries
                             for client in system.clients),
        "collator_equivocations": sum(client.collator_equivocations
                                      for client in system.clients),
        "net_dropped": system.network.faults.stats_dropped,
        "net_duplicated": system.network.faults.stats_duplicated,
        "net_corrupted": system.network.faults.stats_corrupted,
        "tap_dropped": system.network.stats.drops_by_tap,
    }
    handoffs = fetches = transfers = 0
    for cluster in system.shard_execution_nodes:
        for node in cluster:
            handoffs += node.ranges_installed
            fetches += node.range_fetches
            transfers += node.state_transfers
    counters["handoffs"] = handoffs
    counters["range_fetches"] = fetches
    counters["state_transfers"] = transfers
    # Multi-log coordination counters: only present on MultiLogSystem runs,
    # so single-log corpus seeds keep their fingerprints and digests.
    log_registry = getattr(system, "log_registry", None)
    if log_registry is not None:
        counters["log_epoch"] = log_registry.latest_epoch
        for name in ("cross_log_markers", "bindings_sent", "cuts_broadcast",
                     "cut_fallovers", "invalid_cuts", "log_map_cuts"):
            counters[name] = sum(getattr(queue, name)
                                 for queue in system.message_queues)
    return counters


def compute_fingerprint(system: ShardedSystem) -> frozenset:
    """Protocol-state coverage fingerprint of one execution.

    Tokens are (a) consecutive trace-event *edges* per request -- the path a
    request took through submit/admit/order/commit/stage/release/execute/
    vote/collate/reply, which shifts under retransmissions, view changes,
    handoff stalls, and cross-shard fallover -- and (b) log2-bucketed
    protocol counters (epochs, cuts, handoffs, fetches, drops, views).  A
    schedule is *novel* when it contributes a token no earlier schedule
    produced.
    """
    tokens = set()
    by_trace: Dict[str, List[str]] = {}
    for record in system.trace_events():
        by_trace.setdefault(record.trace_id, []).append(record.event)
    for events in by_trace.values():
        previous = "start"
        for event in events:
            tokens.add(f"edge:{previous}>{event}")
            previous = event
        # Whole-path signature: retransmissions, re-served replies, and
        # cross-shard fallover change event *multiplicity* even when every
        # consecutive edge was already seen.
        tokens.add("path:" + ">".join(events))
    for name, value in _system_counters(system).items():
        tokens.add(f"ctr:{name}:{_bucket(int(value))}")
    tokens.add(f"ctr:final_t:{_bucket(int(system.now))}")
    return frozenset(tokens)


def compute_replay_digest(system: ShardedSystem, completed_all: bool) -> str:
    """Digest of everything observable about one execution.

    Two runs of the same schedule in the same build must produce the same
    digest -- the bit-identical-replay property the shrinker certifies and
    CI regression replays check.
    """
    trace = [[record.trace_id, record.event, record.node, record.t_ms]
             for record in system.trace_events()]
    completed = [
        [client.node_id.name,
         [[record.timestamp, record.operation.kind,
           json.dumps(record.result.value, sort_keys=True, default=repr),
           record.result.error, record.seq, record.view,
           record.completed_at_ms]
          for record in client.completed]]
        for client in system.clients
    ]
    digests = [sorted(node.app.state_digest().hex()
                      for node in cluster if not node.crashed)
               for cluster in system.shard_execution_nodes]
    payload = json.dumps(
        {"trace": trace, "completed": completed, "digests": digests,
         "t": system.now, "all": completed_all,
         "counters": _system_counters(system)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_schedule(schedule: FaultSchedule, *,
                 weaken_reply_quorum: bool = False,
                 disable_forwarding_defence: bool = False,
                 budget_ms: float = 8000.0,
                 settle_ms: float = 2000.0) -> RunResult:
    """Execute one schedule end-to-end and audit the result.

    ``weaken_reply_quorum`` is a test-only flag that plants the bug the
    acceptance demonstration hunts: clients accept ``g`` matching reply
    authenticators instead of ``g + 1``, which a single re-signing liar
    (:class:`~repro.faults.byzantine.LyingReplyBehaviour`) can then satisfy.
    It must never be set outside the planted-bug demonstration.

    ``disable_forwarding_defence`` is the liveness twin: it switches off the
    censorship-resistant request path at every agreement backup (no request
    forwarding, no per-request deadlines escalating to a view change), so a
    censoring or silent primary starves requests forever -- the planted bug
    the :class:`~repro.fuzz.oracles.BoundedProgressOracle` must catch.
    """
    problems = schedule.validate()
    if problems:
        raise ValueError(f"invalid schedule: {problems}")
    spec = scenario(schedule.scenario)
    config = spec.make_config()
    if spec.num_logs > 1:
        system = MultiLogSystem(config, KeyValueStore, seed=schedule.seed)
    else:
        system = ShardedSystem(config, KeyValueStore, seed=schedule.seed)
    if weaken_reply_quorum:
        for client in system.clients:
            client.reply_quorum = config.g  # test-only planted bug
    if disable_forwarding_defence:
        for replica in system.agreement_replicas:
            replica.request_liveness_defence = False  # test-only planted bug

    # Fault-free seed phase: scenario setup operations complete before any
    # schedule event installs, so event times are anchored at the start of
    # the racing traffic and oracle invariants hold from their baseline.
    prefix = spec.seed_prefix()
    for index, operation in enumerate(prefix):
        system.clients[index % len(system.clients)].submit(operation)
    while system.total_completed() < len(prefix):
        system.run(50.0)

    injector = install_schedule(system, schedule)
    operations = spec.make_operations(schedule.workload_seed,
                                      schedule.num_requests)
    for index, operation in enumerate(operations):
        system.clients[index % len(system.clients)].submit(operation)
    expected = len(prefix) + len(operations)

    def done() -> bool:
        return system.total_completed() >= expected

    detector = NoProgressDetector()
    detector.sample(system.now, system.total_completed())
    elapsed = 0.0
    while elapsed < budget_ms and not done():
        system.run(50.0)
        elapsed += 50.0
        detector.sample(system.now, system.total_completed())
    # Quiesce: recover everything, heal everything, end every Byzantine
    # window -- then give retransmissions room to finish and recovered
    # replicas time to catch up through state transfer (the fixed window
    # runs even when every reply already arrived, so post-fault recovery
    # machinery is part of every run's observable behaviour).
    injector.heal_all()
    healed_at = system.now
    system.run(200.0)
    settled = 200.0
    detector.sample(system.now, system.total_completed())
    while settled < settle_ms and not done():
        system.run(50.0)
        settled += 50.0
        detector.sample(system.now, system.total_completed())
    completed = system.total_completed()
    completed_all = completed >= expected

    context = RunContext(healed_at_ms=healed_at, final_time_ms=system.now,
                         expected=expected, completed=completed)
    violations = run_oracles(system, completed_all=completed_all,
                             context=context)
    stats = _system_counters(system)
    stats["longest_stall_ms"] = int(detector.longest_stall_ms)
    return RunResult(
        schedule=schedule, completed=completed, expected=expected,
        completed_all=completed_all, violations=violations,
        fingerprint=compute_fingerprint(system) | {
            f"ctr:stall:{_bucket(int(detector.longest_stall_ms))}"},
        replay_digest=compute_replay_digest(system, completed_all),
        final_time_ms=system.now, stats=stats)
