"""The schedule genome: a serialisable, mutatable adversarial schedule.

A :class:`FaultSchedule` unifies every fault-injection mechanism the
simulator has grown -- :class:`~repro.faults.injector.FaultPlan` crash and
partition events, :class:`~repro.faults.byzantine.ByzantineBehaviour` taps,
:class:`~repro.net.faults.NetworkFaultModel` per-link overrides, and
rebalance race timing -- into one declarative object.  Because the simulator
is deterministic, the pair (schedule, harness version) fully determines an
execution: schedules can be mutated, searched, shrunk, serialised into a
corpus, and replayed bit-identically from a CI artifact.

Nodes are referenced *symbolically* ("agreement:0", "execution:1:2",
"client:0") so a schedule is meaningful independent of any constructed
system; the harness resolves references against the scenario's topology at
install time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

#: event kinds a schedule may contain
EVENT_KINDS = ("crash", "partition", "byzantine", "link_fault", "map_change",
               "log_move")

#: map-change operations a schedule may request
MAP_CHANGE_OPS = ("split", "merge")


@dataclass(frozen=True)
class ScheduleEvent:
    """One genome gene: a windowed fault or a rebalance race trigger.

    Only the fields relevant to ``kind`` are meaningful; the rest stay at
    their defaults so every event serialises with one uniform shape:

    * ``crash``: ``node`` crashes at ``at_ms``, recovers ``duration_ms``
      later;
    * ``partition``: the undirected ``a <-> b`` link is cut over the window;
    * ``byzantine``: ``node`` runs Byzantine ``strategy`` over the window;
    * ``link_fault``: the *directed* ``a -> b`` link gets the drop/delay/
      duplicate/corrupt/reorder knobs over the window (asymmetric
      degradation; ``reorder`` delays individual copies behind later
      traffic, the schedule-level reordering gene);
    * ``map_change``: at ``at_ms`` the current primary proposes ``op``
      (split at ``key_index``'s key to cluster ``owner``, or merge of the
      ``key_index``-th boundary), racing whatever else the schedule set up;
    * ``log_move``: at ``at_ms`` the multi-log driver proposes moving shard
      ``key_index`` (mod the shard count) to log group ``owner`` (mod the
      log count) -- a no-op gene on single-log scenarios or when any log's
      preconditions reject the change.
    """

    kind: str
    at_ms: float
    duration_ms: float = 0.0
    node: str = ""
    a: str = ""
    b: str = ""
    strategy: str = ""
    drop: float = 0.0
    delay_ms: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    reorder: float = 0.0
    op: str = ""
    key_index: int = 0
    owner: int = 0

    def validate(self) -> List[str]:
        """Structural problems with this event (empty = well-formed)."""
        problems: List[str] = []
        if self.kind not in EVENT_KINDS:
            problems.append(f"unknown event kind {self.kind!r}")
            return problems
        if self.at_ms < 0 or self.duration_ms < 0:
            problems.append(f"{self.kind}: negative time")
        if self.kind == "crash" and not self.node:
            problems.append("crash: missing node")
        if self.kind == "byzantine" and (not self.node or not self.strategy):
            problems.append("byzantine: missing node or strategy")
        if self.kind in ("partition", "link_fault") and (not self.a or not self.b):
            problems.append(f"{self.kind}: missing endpoints")
        if self.kind == "link_fault":
            for name in ("drop", "duplicate", "corrupt", "reorder"):
                if not 0.0 <= getattr(self, name) <= 1.0:
                    problems.append(f"link_fault: {name} outside [0, 1]")
            if self.delay_ms < 0:
                problems.append("link_fault: negative delay")
        if self.kind == "map_change" and self.op not in MAP_CHANGE_OPS:
            problems.append(f"map_change: unknown op {self.op!r}")
        return problems


@dataclass(frozen=True)
class FaultSchedule:
    """A complete adversarial schedule: scenario + seeds + event genome."""

    scenario: str
    seed: int = 0
    workload_seed: int = 0
    num_requests: int = 40
    events: Tuple[ScheduleEvent, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ #
    # Serialisation (canonical JSON, so digests are stable).
    # ------------------------------------------------------------------ #

    def to_json_dict(self) -> Dict:
        events = []
        for event in self.events:
            data = asdict(event)
            # Fields grown after the corpus was first committed serialise
            # only when set, so older seeds keep their content digests (and
            # thus their corpus file names) byte-for-byte.
            if data.get("reorder") == 0.0:
                del data["reorder"]
            events.append(data)
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "workload_seed": self.workload_seed,
            "num_requests": self.num_requests,
            "events": events,
        }

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys, no whitespace variance)."""
        return json.dumps(self.to_json_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, data: Dict) -> "FaultSchedule":
        events = tuple(ScheduleEvent(**event) for event in data.get("events", []))
        return cls(scenario=data["scenario"], seed=int(data.get("seed", 0)),
                   workload_seed=int(data.get("workload_seed", 0)),
                   num_requests=int(data.get("num_requests", 40)),
                   events=events)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_json_dict(json.loads(text))

    def digest(self) -> str:
        """Content digest of the canonical form; names corpus seed files."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Genome surgery (used by mutation and shrinking).
    # ------------------------------------------------------------------ #

    def with_events(self, events: Sequence[ScheduleEvent]) -> "FaultSchedule":
        return replace(self, events=tuple(events))

    def without_event(self, index: int) -> "FaultSchedule":
        events = list(self.events)
        del events[index]
        return self.with_events(events)

    def validate(self) -> List[str]:
        """Structural problems with the whole schedule (empty = valid)."""
        problems: List[str] = []
        if not self.scenario:
            problems.append("missing scenario")
        if self.num_requests < 1:
            problems.append("num_requests must be >= 1")
        for index, event in enumerate(self.events):
            problems.extend(f"event {index}: {problem}"
                            for problem in event.validate())
        return problems

    def describe(self) -> str:
        """One-line human summary (logs, CI failure messages)."""
        kinds = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        genes = ", ".join(f"{count}x {kind}" for kind, count in sorted(kinds.items()))
        return (f"{self.scenario} seed={self.seed} wl={self.workload_seed} "
                f"reqs={self.num_requests} [{genes or 'no faults'}]")
