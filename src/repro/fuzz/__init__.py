"""Byzantine fuzzing: adversarial schedule search over the simulator.

The deterministic simulator makes adversarial robustness *searchable*: a
seed plus a :class:`FaultSchedule` fully determines an execution, so instead
of sampling random fault timings the explorer mutates schedules toward novel
protocol states (coverage = trace-edge + counter-bucket fingerprints),
checks every execution against first-class invariant oracles, and shrinks
any violation to a minimal schedule that replays bit-identically.

Layers:

* :mod:`repro.fuzz.schedule` -- the serialisable, mutatable schedule genome;
* :mod:`repro.fuzz.oracles` -- exactly-once, reply-table-audit,
  snapshot-consistency, and epoch-cut-safety oracles over a finished run;
* :mod:`repro.fuzz.harness` -- scenario construction and schedule execution;
* :mod:`repro.fuzz.explorer` -- the coverage-guided mutate/run/keep loop;
* :mod:`repro.fuzz.shrink` -- violation minimisation;
* :mod:`repro.fuzz.corpus` -- seed persistence and PR-time regression replay;
* ``python -m repro.fuzz`` -- explore / replay / shrink / corpus-regression.
"""

from .schedule import EVENT_KINDS, FaultSchedule, ScheduleEvent
from .oracles import (
    DEFAULT_ORACLES,
    BoundedProgressOracle,
    EpochCutSafetyOracle,
    ExactlyOnceOracle,
    NoProgressDetector,
    OracleViolation,
    ReplyTableAuditOracle,
    RunContext,
    SnapshotConsistencyOracle,
    run_oracles,
)
from .harness import (
    SCENARIOS,
    RunResult,
    ScenarioSpec,
    compute_fingerprint,
    compute_replay_digest,
    install_schedule,
    run_schedule,
    scenario,
)
from .explorer import ExploreReport, Finding, explore, mutate, seed_schedules
from .shrink import ShrinkResult, shrink
from .corpus import (
    RegressionReport,
    load_corpus,
    replay_corpus,
    save_corpus,
    save_schedule,
)

__all__ = [
    "EVENT_KINDS",
    "FaultSchedule",
    "ScheduleEvent",
    "DEFAULT_ORACLES",
    "BoundedProgressOracle",
    "EpochCutSafetyOracle",
    "ExactlyOnceOracle",
    "NoProgressDetector",
    "OracleViolation",
    "ReplyTableAuditOracle",
    "RunContext",
    "SnapshotConsistencyOracle",
    "run_oracles",
    "SCENARIOS",
    "RunResult",
    "ScenarioSpec",
    "compute_fingerprint",
    "compute_replay_digest",
    "install_schedule",
    "run_schedule",
    "scenario",
    "ExploreReport",
    "Finding",
    "explore",
    "mutate",
    "seed_schedules",
    "ShrinkResult",
    "shrink",
    "RegressionReport",
    "load_corpus",
    "replay_corpus",
    "save_corpus",
    "save_schedule",
]
