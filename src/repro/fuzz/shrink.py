"""Violation shrinking: minimise a schedule while keeping it violating.

Given a schedule whose execution breached an oracle, iterate simplification
passes to a fixpoint, keeping each simplification only if the shrunk
schedule *still* violates:

1. **drop events** -- remove each gene in turn (ddmin-style, one at a time:
   schedules are short enough that linear passes beat splitting);
2. **narrow windows** -- halve each remaining event's ``duration_ms``;
3. **demote strategies** -- replace a Byzantine strategy with the next
   milder one (``lying_reply -> corrupt_reply -> silent``;
   ``equivocating_primary -> censoring_primary -> slow_primary -> silent``)
   and zero link-fault knobs one at a time.

The deterministic simulator makes the predicate exact: a schedule either
reproduces the violation or it does not, with no flakiness, so the shrunk
reproducer replays bit-identically (the explorer certifies this by replaying
it twice and comparing digests).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Callable, List, Optional

from .schedule import FaultSchedule, ScheduleEvent

#: demotion ladder (mildest last); a strategy not on the ladder is left alone
_DEMOTIONS = {"lying_reply": "corrupt_reply", "corrupt_reply": "silent",
              "equivocating_primary": "censoring_primary",
              "censoring_primary": "slow_primary",
              "slow_primary": "silent"}

#: hard cap on shrink executions, so a pathological schedule cannot wedge CI
MAX_SHRINK_RUNS = 200


@dataclass
class ShrinkResult:
    """The minimal violating schedule and the proof it still violates."""

    schedule: FaultSchedule
    result: object  # the RunResult of the final (still-violating) schedule
    runs: int


def _narrowed(event: ScheduleEvent) -> Optional[ScheduleEvent]:
    if event.duration_ms < 10.0:
        return None
    return dc_replace(event, duration_ms=round(event.duration_ms / 2.0, 1))


def _demoted(event: ScheduleEvent) -> List[ScheduleEvent]:
    candidates: List[ScheduleEvent] = []
    if event.kind == "byzantine" and event.strategy in _DEMOTIONS:
        candidates.append(dc_replace(event, strategy=_DEMOTIONS[event.strategy]))
    if event.kind == "link_fault":
        for knob in ("drop", "duplicate", "corrupt", "reorder"):
            if getattr(event, knob) > 0.0:
                candidates.append(dc_replace(event, **{knob: 0.0}))
        if event.delay_ms > 0.0:
            candidates.append(dc_replace(event, delay_ms=0.0))
    return candidates


def shrink(schedule: FaultSchedule,
           run: Callable[[FaultSchedule], object]) -> ShrinkResult:
    """Minimise ``schedule`` under the still-violates predicate.

    ``run`` executes a schedule and returns an object with a ``violations``
    list (a :class:`~repro.fuzz.harness.RunResult`).  The original schedule
    is executed once up front to anchor the predicate; if it does not
    violate (it must, if the caller got here through the explorer), it is
    returned unshrunk.
    """
    runs = 0

    def execute(candidate: FaultSchedule):
        nonlocal runs
        runs += 1
        return run(candidate)

    best_result = execute(schedule)
    if not best_result.violations:
        return ShrinkResult(schedule=schedule, result=best_result, runs=runs)
    best = schedule

    changed = True
    while changed and runs < MAX_SHRINK_RUNS:
        changed = False
        # Pass 1: drop each event.
        index = 0
        while index < len(best.events) and runs < MAX_SHRINK_RUNS:
            candidate = best.without_event(index)
            result = execute(candidate)
            if result.violations:
                best, best_result = candidate, result
                changed = True
                # Same index now names the next event.
            else:
                index += 1
        # Pass 2: narrow each remaining window.
        for index in range(len(best.events)):
            if runs >= MAX_SHRINK_RUNS:
                break
            narrowed = _narrowed(best.events[index])
            if narrowed is None:
                continue
            events = list(best.events)
            events[index] = narrowed
            candidate = best.with_events(events)
            result = execute(candidate)
            if result.violations:
                best, best_result = candidate, result
                changed = True
        # Pass 3: demote strategies / zero link knobs.
        for index in range(len(best.events)):
            if runs >= MAX_SHRINK_RUNS:
                break
            for demoted in _demoted(best.events[index]):
                events = list(best.events)
                events[index] = demoted
                candidate = best.with_events(events)
                result = execute(candidate)
                if result.violations:
                    best, best_result = candidate, result
                    changed = True
                    break
    return ShrinkResult(schedule=best, result=best_result, runs=runs)
