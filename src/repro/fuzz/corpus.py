"""Corpus persistence and regression replay.

A corpus is a directory of ``<digest-prefix>.json`` files, one per schedule
that contributed novel coverage during an exploration campaign.  Nightly CI
uploads the corpus as an artifact; interesting seeds get committed under
``benchmarks/fuzz_corpus/`` and replayed on every PR (the
``corpus-regression`` CLI mode), so a protocol change that re-breaks an
invariant a past campaign exercised fails immediately instead of waiting for
the next nightly campaign to rediscover it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from .harness import RunResult, run_schedule
from .schedule import FaultSchedule


def save_schedule(directory: Path, schedule: FaultSchedule) -> Path:
    """Write one corpus seed; the file name is its content digest."""
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{schedule.digest()[:12]}.json"
    path.write_text(json.dumps(schedule.to_json_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def save_corpus(directory: Path, schedules: List[FaultSchedule]) -> List[Path]:
    return [save_schedule(directory, schedule) for schedule in schedules]


def load_corpus(directory: Path) -> List[FaultSchedule]:
    """Load every seed in ``directory``, sorted by file name for stability."""
    schedules: List[FaultSchedule] = []
    for path in sorted(Path(directory).glob("*.json")):
        schedules.append(FaultSchedule.from_json(path.read_text()))
    return schedules


@dataclass
class RegressionReport:
    """Outcome of replaying a committed corpus."""

    results: List[RunResult]
    seeds: int

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def to_json_dict(self) -> Dict:
        return {
            "mode": "corpus-regression",
            "seeds": self.seeds,
            "violations": [violation.to_json_dict()
                           for result in self.results
                           for violation in result.violations],
            "replays": [result.to_json_dict() for result in self.results],
            "pass": self.ok,
        }


def replay_corpus(directory: Path, *, budget_ms: float = 8000.0,
                  progress=None) -> RegressionReport:
    """Replay every committed seed; any oracle violation is a regression."""
    schedules = load_corpus(directory)
    results: List[RunResult] = []
    for index, schedule in enumerate(schedules):
        result = run_schedule(schedule, budget_ms=budget_ms)
        results.append(result)
        if progress is not None:
            progress(index + 1, len(schedules), result)
    return RegressionReport(results=results, seeds=len(schedules))
