"""Setup script (legacy path kept so `pip install -e .` works offline without the
`wheel` package; metadata mirrors pyproject.toml)."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Separating Agreement from Execution for Byzantine "
        "Fault Tolerant Services' (SOSP 2003)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
)
